package bench

import (
	"fmt"
	"runtime"

	"flor.dev/flor/internal/backmat"
	"flor.dev/flor/internal/cluster"
	"flor.dev/flor/internal/core"
	"flor.dev/flor/internal/replay"
	"flor.dev/flor/internal/workloads"
)

// paperGPUPool is the paper's replay resource pool: four P3.8xLarge
// machines, four GPUs each.
const paperGPUPool = 16

// Fig12Row is one workload's replay-latency measurement.
type Fig12Row struct {
	Name string
	// Real wall-clock measurements.
	VanillaNs      int64
	OuterReplayNs  int64 // partial replay, outer probe, 1 worker (real)
	OuterSpeedup   float64
	InnerReplay2Ns int64 // inner probe, 2 workers (real wall clock)
	// OuterParSpeedup is the virtual-time outer-probe replay speedup with
	// parallelism over the pool (the paper's top plot combines partial AND
	// parallel replay): vanilla time / parallel restore-replay makespan.
	OuterParSpeedup float64
	// Virtual-time inner-probe replay on the paper's pool.
	InnerWorkers      int
	InnerVirtSpeedup  float64
	InnerVirtReplayNs int64
}

// Fig12Report carries both halves of Figure 12.
type Fig12Report struct {
	Rows []Fig12Row
}

// Fig12 reproduces Figure 12: replay latency factored by probe position.
// The top half (outer probe → partial replay) is measured in real wall
// clock. The bottom half (inner probe → full re-execution) is measured in
// real wall clock at G=2 (the host's core count) and in virtual time on the
// paper's 16-GPU pool, using per-iteration costs measured during record.
func (s *Session) Fig12() (*Fig12Report, error) {
	rep := &Fig12Report{}
	for _, name := range workloads.Names() {
		wr, err := s.Run(name)
		if err != nil {
			return nil, err
		}
		row := Fig12Row{Name: name, VanillaNs: wr.VanillaNs}

		outer, err := replay.Replay(wr.Record.Recording, workloads.WithOuterProbe(wr.Factory),
			replay.Options{Workers: 1})
		if err != nil {
			return nil, err
		}
		row.OuterReplayNs = outer.WallNs
		row.OuterSpeedup = float64(wr.VanillaNs) / float64(outer.WallNs)

		g := runtime.NumCPU()
		if g > 2 {
			g = 2
		}
		inner, err := replay.Replay(wr.Record.Recording, workloads.WithInnerProbe(wr.Factory),
			replay.Options{Workers: g, Init: replay.Weak, SkipDeferredCheck: true})
		if err != nil {
			return nil, err
		}
		row.InnerReplay2Ns = inner.WallNs

		// Virtual-time scale-out: as many workers as give parallelism gains,
		// bounded by the paper's pool.
		row.InnerWorkers = paperGPUPool
		if e := wr.Epochs(); e < row.InnerWorkers {
			row.InnerWorkers = e
		}
		vr := cluster.Simulate(wr.IterationCosts(), row.InnerWorkers, replay.Weak, true)
		row.InnerVirtSpeedup = vr.SpeedupFactor
		row.InnerVirtReplayNs = vr.MakespanNs
		outerPar := cluster.Simulate(wr.IterationCosts(), row.InnerWorkers, replay.Weak, false)
		row.OuterParSpeedup = outerPar.SpeedupFactor
		rep.Rows = append(rep.Rows, row)
	}
	s.printf("\nFigure 12: replay latency by probe position.\n")
	s.printf("Top: outer-loop probe (partial + parallel replay).\n")
	s.printf("%-5s %12s %14s %14s %16s\n", "Name", "vanilla", "outer replay", "seq speedup", "parallel speedup")
	for _, r := range rep.Rows {
		s.printf("%-5s %11.3fs %13.3fs %13.1fx %15.1fx\n",
			r.Name, sec(r.VanillaNs), sec(r.OuterReplayNs), r.OuterSpeedup, r.OuterParSpeedup)
	}
	s.printf("Bottom: inner-loop probe (parallel-only replay; G workers, virtual time).\n")
	s.printf("%-5s %4s %14s %10s %20s\n", "Name", "G", "virt replay", "speedup", "real G=2 wall clock")
	for _, r := range rep.Rows {
		s.printf("%-5s %4d %13.3fs %9.2fx %19.3fs\n",
			r.Name, r.InnerWorkers, sec(r.InnerVirtReplayNs), r.InnerVirtSpeedup, sec(r.InnerReplay2Ns))
	}
	return rep, nil
}

// Fig10Row is one workload's parallel-replay fraction.
type Fig10Row struct {
	Name           string
	StrongFraction float64 // replay time / vanilla, strong init, G=4
	WeakFraction   float64
	FloorFraction  float64 // best achievable: ceil(n/G)/n
}

// Fig10Report carries the parallel-replay-fraction comparison.
type Fig10Report struct {
	Rows    []Fig10Row
	Workers int
}

// Fig10 reproduces Figure 10: parallel replay time of entire training jobs
// as a fraction of a vanilla re-execution, on 4 GPUs, weak vs strong
// initialization (virtual time from measured costs).
func (s *Session) Fig10() (*Fig10Report, error) {
	const g = 4
	rep := &Fig10Report{Workers: g}
	for _, name := range workloads.Names() {
		wr, err := s.Run(name)
		if err != nil {
			return nil, err
		}
		costs := wr.IterationCosts()
		strong := cluster.Simulate(costs, g, replay.Strong, true)
		weak := cluster.Simulate(costs, g, replay.Weak, true)
		n := wr.Epochs()
		per := (n + g - 1) / g
		rep.Rows = append(rep.Rows, Fig10Row{
			Name:           name,
			StrongFraction: float64(strong.MakespanNs) / float64(strong.SequentialNs),
			WeakFraction:   float64(weak.MakespanNs) / float64(weak.SequentialNs),
			FloorFraction:  float64(per) / float64(n),
		})
	}
	s.printf("\nFigure 10: parallel replay time as fraction of vanilla re-execution (G=%d).\n", g)
	s.printf("%-5s %10s %10s %12s\n", "Name", "strong", "weak", "ideal floor")
	for _, r := range rep.Rows {
		s.printf("%-5s %9.1f%% %9.1f%% %11.1f%%\n",
			r.Name, r.StrongFraction*100, r.WeakFraction*100, r.FloorFraction*100)
	}
	return rep, nil
}

// Fig13Report carries the RsNt scale-out sweep.
type Fig13Report struct {
	Workload string
	GPUs     []int
	Speedup  []float64
	Ideal    []float64
	// RealWallSpeedup2 is the wall-clock speedup measured at 2 real workers
	// (sanity anchor for the virtual model).
	RealWallSpeedup2 float64
}

// Fig13 reproduces Figure 13: RsNt replay scale-out from 4 to 16 GPUs with
// weak initialization, against ideal parallelism.
func (s *Session) Fig13() (*Fig13Report, error) {
	wr, err := s.Run("RsNt")
	if err != nil {
		return nil, err
	}
	rep := &Fig13Report{Workload: "RsNt"}
	costs := wr.IterationCosts()
	n := wr.Epochs()
	for _, g := range []int{1, 4, 8, 12, 16} {
		vr := cluster.Simulate(costs, g, replay.Weak, true)
		rep.GPUs = append(rep.GPUs, g)
		rep.Speedup = append(rep.Speedup, vr.SpeedupFactor)
		rep.Ideal = append(rep.Ideal, replay.MaxSpeedup(n, g))
	}
	// Real 2-worker anchor.
	seq, err := replay.Replay(wr.Record.Recording, workloads.WithInnerProbe(wr.Factory),
		replay.Options{Workers: 1, Init: replay.Weak, SkipDeferredCheck: true})
	if err != nil {
		return nil, err
	}
	par, err := replay.Replay(wr.Record.Recording, workloads.WithInnerProbe(wr.Factory),
		replay.Options{Workers: 2, Init: replay.Weak, SkipDeferredCheck: true})
	if err != nil {
		return nil, err
	}
	rep.RealWallSpeedup2 = float64(seq.WallNs) / float64(par.WallNs)

	s.printf("\nFigure 13: RsNt parallel replay scale-out (weak init, virtual time).\n")
	s.printf("%6s %10s %10s\n", "GPUs", "speedup", "ideal")
	for i := range rep.GPUs {
		s.printf("%6d %9.2fx %9.2fx\n", rep.GPUs[i], rep.Speedup[i], rep.Ideal[i])
	}
	s.printf("real wall-clock anchor at G=2: %.2fx\n", rep.RealWallSpeedup2)
	return rep, nil
}

// Fig14Row compares serial vs parallel replay cost for one workload.
type Fig14Row struct {
	Name         string
	SerialNs     int64
	SerialCost   float64
	ParallelNs   int64
	ParallelCost float64
	Machines     int
	Workers      int
}

// Fig14Report carries the cost-of-parallelism comparison.
type Fig14Report struct {
	Rows []Fig14Row
}

// Fig14 reproduces Figure 14: the dollar cost of performing the same replay
// serially on a P3.2xLarge vs in parallel on P3.8xLarge machines.
func (s *Session) Fig14() (*Fig14Report, error) {
	rep := &Fig14Report{}
	for _, name := range workloads.Names() {
		wr, err := s.Run(name)
		if err != nil {
			return nil, err
		}
		costs := wr.IterationCosts()
		serial := cluster.Simulate(costs, 1, replay.Weak, true)
		_, serialCost := cluster.ReplayCost(serial, cluster.P32xLarge())

		g := paperGPUPool
		if e := wr.Epochs(); e < g {
			g = e
		}
		par := cluster.Simulate(costs, g, replay.Weak, true)
		machines, parCost := cluster.ReplayCost(par, cluster.P38xLarge())
		rep.Rows = append(rep.Rows, Fig14Row{
			Name:     name,
			SerialNs: serial.MakespanNs, SerialCost: serialCost,
			ParallelNs: par.MakespanNs, ParallelCost: parCost,
			Machines: machines, Workers: g,
		})
	}
	s.printf("\nFigure 14: cost of serial vs parallel replay.\n")
	s.printf("%-5s %13s %11s %16s %13s %9s\n",
		"Name", "serial time", "cost", "parallel time", "cost", "machines")
	for _, r := range rep.Rows {
		s.printf("%-5s %12.3fs %11s %15.3fs %13s %6d x4GPU\n",
			r.Name, sec(r.SerialNs), cluster.FormatDollars(r.SerialCost),
			sec(r.ParallelNs), cluster.FormatDollars(r.ParallelCost), r.Machines)
	}
	return rep, nil
}

// SerVsIOReport carries the §5.1 microbenchmark results.
type SerVsIOReport struct {
	SerializeNs int64
	WriteNs     int64
	Ratio       float64
	// Record overhead with Fork vs Baseline, averaged over the workloads
	// (the paper's 1.74% vs 4.76% comparison).
	ForkOverhead     float64
	BaselineOverhead float64
}

// SerVsIO reproduces §5.1's supporting measurements: the serialization/IO
// cost ratio, and the record overhead reduction from moving materialization
// off the training thread (Fork vs Baseline strategies).
func (s *Session) SerVsIO(names []string) (*SerVsIOReport, error) {
	rep := &SerVsIOReport{}
	var forkSum, baseSum float64
	for _, name := range names {
		wr, err := s.Run(name)
		if err != nil {
			return nil, err
		}
		// Both strategies record with adaptivity disabled: the comparison is
		// about where materialization work lands, so every epoch must
		// materialize under both configurations.
		fork, err := core.Record(s.tempDir("servsio-fork-"+name), wr.Factory,
			core.RecordOptions{Strategy: backmat.Fork, DisableAdaptive: true})
		if err != nil {
			return nil, err
		}
		st := fork.MatStats
		// "Serialization" in the paper's cloudpickle sense covers the object
		// graph traversal (our snapshot) plus byte encoding.
		rep.SerializeNs += st.SnapshotNs + st.SerializeNs
		rep.WriteNs += st.WriteNs
		forkSum += float64(st.CallerNs) / float64(wr.VanillaNs)

		base, err := core.Record(s.tempDir("servsio-base-"+name), wr.Factory,
			core.RecordOptions{Strategy: backmat.Baseline, DisableAdaptive: true})
		if err != nil {
			return nil, err
		}
		baseSum += float64(base.MatStats.CallerNs) / float64(wr.VanillaNs)
	}
	if rep.WriteNs > 0 {
		rep.Ratio = float64(rep.SerializeNs) / float64(rep.WriteNs)
	}
	rep.ForkOverhead = forkSum / float64(len(names))
	rep.BaselineOverhead = baseSum / float64(len(names))
	s.printf("\n§5.1: serialization vs I/O and background materialization benefit.\n")
	s.printf("serialize/write time ratio: %.2fx (paper: 4.3x)\n", rep.Ratio)
	s.printf("record overhead, background (Fork): %.2f%%  on-thread (Baseline): %.2f%%\n",
		rep.ForkOverhead*100, rep.BaselineOverhead*100)
	s.printf("(paper: background materialization brings overhead from 4.76%% to 1.74%%)\n")
	return rep, nil
}

// CFactor reports the measured restore/materialize scaling factor c across
// all workloads (paper §5.3.2: measured average 1.38, seeded at 1.0).
func (s *Session) CFactor() (float64, error) {
	var sum float64
	var n int
	for _, name := range workloads.Names() {
		wr, err := s.Run(name)
		if err != nil {
			return 0, err
		}
		// Replay refined the tracker during derive(); use the mean restore
		// vs mean materialization of the run's checkpoints.
		metas := wr.Record.Recording.Store.Metas()
		var materSum, materN int64
		for _, m := range metas {
			if m.MaterNs > 0 {
				materSum += m.MaterNs
				materN++
			}
		}
		if materN == 0 || wr.MeanRestoreNs == 0 {
			continue
		}
		sum += float64(wr.MeanRestoreNs) / (float64(materSum) / float64(materN))
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("bench: no c observations")
	}
	c := sum / float64(n)
	s.printf("\n§5.3: measured restore/materialize scaling factor c = %.2f (paper: 1.38)\n", c)
	return c, nil
}
