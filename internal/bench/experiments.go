package bench

import (
	"fmt"
	"time"

	"flor.dev/flor/internal/adapt"
	"flor.dev/flor/internal/backmat"
	"flor.dev/flor/internal/cluster"
	"flor.dev/flor/internal/core"
	"flor.dev/flor/internal/nn"
	"flor.dev/flor/internal/store"
	"flor.dev/flor/internal/tensor"
	"flor.dev/flor/internal/value"
	"flor.dev/flor/internal/workloads"
	"flor.dev/flor/internal/xrand"
)

// Table3 prints the workload inventory (paper Table 3).
func (s *Session) Table3() {
	s.printf("Table 3: Computer vision and NLP benchmarks used in our evaluation.\n")
	s.printf("%-5s %-11s %-31s %-17s %-12s %-10s %s\n",
		"Name", "Benchmark", "Task", "Model", "Dataset", "Train/Tune", "Epochs")
	for _, spec := range workloads.All() {
		s.printf("%-5s %-11s %-31s %-17s %-12s %-10s %d\n",
			spec.Name, spec.Benchmark, spec.Task, spec.Model, spec.Dataset, spec.Mode, spec.PaperEpochs)
	}
}

// Fig5Report carries the background-materialization comparison.
type Fig5Report struct {
	// CallerBlockedNs maps strategy name to mean training-thread blocked
	// time for one large checkpoint.
	CallerBlockedNs map[string]int64
	CheckpointBytes int64
}

// Fig5 reproduces Figure 5: the time the main thread is blocked while
// materializing one large (RTE-like: a big frozen model) checkpoint, under
// the four strategies. Results are the mean of `rounds` materializations.
func (s *Session) Fig5(rounds int) (*Fig5Report, error) {
	// An RTE-like state bundle: a large frozen transformer plus optimizer.
	model := nn.NewTransformer(xrand.New(0xF165), 3000, 12, 64, 128, 3, 2)
	vals := []backmat.NamedValue{
		{Name: "net", V: &value.Model{M: model}},
		{Name: "w", V: &value.Tensor{T: tensor.Randn(xrand.New(5), 1, 1<<15)}},
	}
	rep := &Fig5Report{CallerBlockedNs: map[string]int64{}}
	for _, strat := range []backmat.Strategy{backmat.Baseline, backmat.Queue, backmat.Plasma, backmat.Fork} {
		st, err := store.Open(s.tempDir("fig5-" + strat.String()))
		if err != nil {
			return nil, err
		}
		mat := backmat.New(st, strat)
		var total time.Duration
		for i := 0; i < rounds; i++ {
			total += mat.Materialize(store.Key{LoopID: "L", Exec: i}, vals, 0)
			// Drain between rounds: the paper measures the cost of one
			// checkpoint, not queueing backpressure from earlier ones.
			if err := mat.Drain(); err != nil {
				return nil, err
			}
		}
		if err := mat.Close(); err != nil {
			return nil, err
		}
		rep.CallerBlockedNs[strat.String()] = int64(total) / int64(rounds)
		rep.CheckpointBytes = mat.Stats().BytesWritten / int64(rounds)
	}
	s.printf("\nFigure 5: Background materialization performance (caller-blocked time,\n")
	s.printf("one %.1f MB checkpoint, mean of %d rounds).\n", float64(rep.CheckpointBytes)/(1<<20), rounds)
	for _, name := range []string{"Baseline", "IPC-Queue", "IPC-Plasma", "Fork"} {
		ns := rep.CallerBlockedNs[name]
		s.printf("  %-11s %10.3f ms\n", name, float64(ns)/1e6)
	}
	return rep, nil
}

func (s *Session) tempDir(name string) string {
	return s.BaseDir + "/" + name
}

// OverheadRow is one workload's record-overhead measurement.
//
// Two overhead metrics are reported. Overhead (the headline) is
// accounting-based: the time the training thread was blocked by
// materialization (snapshotting, handoffs, and backpressure), divided by the
// vanilla runtime — the quantity Flor's mechanisms minimize, measured
// exactly. WallOverhead is the end-to-end wall-clock difference, which on a
// two-core shared host also absorbs scheduler noise and background CPU
// contention absent from the paper's 32-vCPU testbed.
type OverheadRow struct {
	Name          string
	VanillaNs     int64
	RecordNs      int64
	CallerNs      int64 // training-thread blocked time during record
	DisabledNs    int64 // wall time with adaptivity disabled (Fig 7 only)
	DisabledCall  int64 // blocked time with adaptivity disabled
	Overhead      float64
	WallOverhead  float64
	DisabledOver  float64
	DisabledWall  float64
	Checkpoints   int
	DisabledCkpts int
}

// Fig7Report carries the adaptive-checkpointing overhead comparison.
type Fig7Report struct {
	Rows    []OverheadRow
	Epsilon float64
}

// Fig7 reproduces Figure 7: record overhead per workload with adaptive
// checkpointing enabled vs disabled, against the tolerance ε.
func (s *Session) Fig7() (*Fig7Report, error) {
	rep := &Fig7Report{Epsilon: adapt.DefaultEpsilon}
	for _, name := range workloads.Names() {
		wr, err := s.Run(name)
		if err != nil {
			return nil, err
		}
		row := OverheadRow{
			Name:        name,
			VanillaNs:   wr.VanillaNs,
			RecordNs:    wr.Record.WallNs,
			CallerNs:    wr.Record.MatStats.CallerNs,
			Checkpoints: wr.Record.MatStats.Checkpoints,
		}
		// Disabled-adaptivity record in a scratch directory.
		var disCall int64
		var disCkpts int
		disNs, err := medianTrials(func() (int64, error) {
			dir := s.tempDir(fmt.Sprintf("fig7-dis-%s", name))
			dis, err := core.Record(dir, wr.Factory, core.RecordOptions{DisableAdaptive: true})
			if err != nil {
				return 0, err
			}
			disCall = dis.MatStats.CallerNs
			disCkpts = dis.MatStats.Checkpoints
			return dis.WallNs, nil
		})
		if err != nil {
			return nil, err
		}
		row.DisabledNs = disNs
		row.DisabledCall = disCall
		row.DisabledCkpts = disCkpts
		row.Overhead = float64(row.CallerNs) / float64(row.VanillaNs)
		row.WallOverhead = over(row.RecordNs, row.VanillaNs)
		row.DisabledOver = float64(disCall) / float64(row.VanillaNs)
		row.DisabledWall = over(disNs, row.VanillaNs)
		rep.Rows = append(rep.Rows, row)
	}
	s.printf("\nFigure 7: Impact of adaptive checkpointing on record overhead\n")
	s.printf("(tolerance ε = %.2f%%; ovhd = training-thread blocked time / vanilla,\n", rep.Epsilon*100)
	s.printf("wall = end-to-end wall-clock overhead on this 2-core host).\n")
	s.printf("%-5s %14s %7s %6s %15s %7s %6s\n", "Name",
		"adaptive ovhd", "wall", "ckpts", "disabled ovhd", "wall", "ckpts")
	for _, r := range rep.Rows {
		s.printf("%-5s %13.2f%% %6.1f%% %6d %14.2f%% %6.1f%% %6d\n",
			r.Name, r.Overhead*100, r.WallOverhead*100, r.Checkpoints,
			r.DisabledOver*100, r.DisabledWall*100, r.DisabledCkpts)
	}
	return rep, nil
}

func over(withNs, withoutNs int64) float64 {
	if withoutNs <= 0 {
		return 0
	}
	o := float64(withNs-withoutNs) / float64(withoutNs)
	if o < 0 {
		return 0 // timing noise on sub-percent overheads
	}
	return o
}

// Fig11Report carries the record-overhead comparison of Figure 11.
type Fig11Report struct {
	Rows        []OverheadRow
	MeanOverhed float64
}

// Fig11 reproduces Figure 11: training time with and without checkpointing
// and the average record overhead.
func (s *Session) Fig11() (*Fig11Report, error) {
	rep := &Fig11Report{}
	var sum float64
	for _, name := range workloads.Names() {
		wr, err := s.Run(name)
		if err != nil {
			return nil, err
		}
		row := OverheadRow{
			Name:         name,
			VanillaNs:    wr.VanillaNs,
			RecordNs:     wr.Record.WallNs,
			CallerNs:     wr.Record.MatStats.CallerNs,
			Overhead:     float64(wr.Record.MatStats.CallerNs) / float64(wr.VanillaNs),
			WallOverhead: over(wr.Record.WallNs, wr.VanillaNs),
		}
		sum += row.Overhead
		rep.Rows = append(rep.Rows, row)
	}
	rep.MeanOverhed = sum / float64(len(rep.Rows))
	s.printf("\nFigure 11: Model training time with and without checkpointing.\n")
	s.printf("%-5s %12s %12s %10s %10s\n", "Name", "vanilla", "record", "overhead", "(wall)")
	for _, r := range rep.Rows {
		s.printf("%-5s %11.3fs %11.3fs %9.2f%% %9.2f%%\n",
			r.Name, sec(r.VanillaNs), sec(r.RecordNs), r.Overhead*100, r.WallOverhead*100)
	}
	s.printf("average overhead: %.2f%% (paper: 1.47%%)\n", rep.MeanOverhed*100)
	return rep, nil
}

func sec(ns int64) float64 { return float64(ns) / 1e9 }

// Table4Row is one workload's storage accounting.
type Table4Row struct {
	Name        string
	GzBytes     int64
	CostPerMo   float64
	Checkpoints int
}

// Table4Report carries the storage-cost table.
type Table4Report struct {
	Rows []Table4Row // sorted ascending by size, like the paper's table
}

// Table4 reproduces Table 4: gzip-compressed checkpoint footprint of one
// record execution per workload and its monthly S3 cost.
func (s *Session) Table4() (*Table4Report, error) {
	rep := &Table4Report{}
	for _, name := range workloads.Names() {
		wr, err := s.Run(name)
		if err != nil {
			return nil, err
		}
		gz, err := storeGzTotal(wr.Record.Recording.Store)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, Table4Row{
			Name:        name,
			GzBytes:     gz,
			CostPerMo:   cluster.CostModel{}.StorageCostPerMonth(gz),
			Checkpoints: wr.Record.MatStats.Checkpoints,
		})
	}
	sortRows(rep.Rows)
	s.printf("\nTable 4: storage for one execution of Flor record (gzip).\n")
	s.printf("%-5s %16s %14s %12s\n", "Name", "ckpt size", "cost/month", "checkpoints")
	for _, r := range rep.Rows {
		s.printf("%-5s %15s %14s %12d\n", r.Name, fmtBytes(r.GzBytes),
			cluster.FormatDollars(r.CostPerMo), r.Checkpoints)
	}
	return rep, nil
}

func sortRows(rows []Table4Row) {
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && rows[j].GzBytes < rows[j-1].GzBytes; j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}
