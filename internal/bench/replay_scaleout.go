package bench

import (
	"encoding/json"
	"math"

	"flor.dev/flor/internal/cluster"
	"flor.dev/flor/internal/replay"
	"flor.dev/flor/internal/sched"
)

// Synthetic replay-scaleout scenario parameters: iteration counts and costs
// are virtual (the simulator charges modeled nanoseconds), so the experiment
// is deterministic and runs in microseconds regardless of -scale.
const (
	scaleoutIters     = 256
	scaleoutComputNs  = 10_000_000 // uniform per-iteration compute, 10ms
	scaleoutRestoreNs = 200_000    // per-iteration checkpoint restore, 0.2ms
	scaleoutSetupNs   = 5_000_000
	// zipfS is the skew exponent: cost[e] ∝ 1/(e+1)^s, the head-heavy shape
	// of warmup-dominated training loops and heavy probes on early epochs.
	zipfS = 1.1
)

// scaleoutScenario is one synthetic cost vector.
type scaleoutScenario struct {
	name  string
	costs *cluster.IterationCosts
}

// scaleoutScenarios builds the uniform and Zipf-skewed cost vectors.
func scaleoutScenarios() []scaleoutScenario {
	uniform := &cluster.IterationCosts{SetupNs: scaleoutSetupNs}
	zipf := &cluster.IterationCosts{SetupNs: scaleoutSetupNs}
	norm := zipfNorm()
	for e := 0; e < scaleoutIters; e++ {
		uniform.ComputNs = append(uniform.ComputNs, scaleoutComputNs)
		uniform.RestoreNs = append(uniform.RestoreNs, scaleoutRestoreNs)
		// The Zipf vector holds the same total compute as the uniform one,
		// redistributed head-heavily.
		w := 1 / math.Pow(float64(e+1), zipfS)
		zipf.ComputNs = append(zipf.ComputNs, int64(w*float64(scaleoutComputNs*scaleoutIters)/norm))
		zipf.RestoreNs = append(zipf.RestoreNs, scaleoutRestoreNs)
	}
	return []scaleoutScenario{{"uniform", uniform}, {"zipf", zipf}}
}

// zipfNorm returns the normalization constant Σ 1/k^s over the scenario.
func zipfNorm() float64 {
	var sum float64
	for e := 1; e <= scaleoutIters; e++ {
		sum += 1 / math.Pow(float64(e), zipfS)
	}
	return sum
}

// ReplayScaleoutRow is one (scenario, scheduler, G) virtual makespan.
type ReplayScaleoutRow struct {
	Scenario   string  `json:"scenario"`  // "uniform" or "zipf"
	Scheduler  string  `json:"scheduler"` // "static", "balanced", "stealing"
	G          int     `json:"g"`
	MakespanNs int64   `json:"makespan_ns"`
	Speedup    float64 `json:"speedup"`   // sequential / makespan
	Steals     int     `json:"steals"`    // stealing scheduler only
	VsStatic   float64 `json:"vs_static"` // static makespan / this makespan
}

// ReplayScaleoutReport compares the three replay schedulers under uniform
// and Zipf-skewed per-iteration costs (weak init, probed inner loop).
type ReplayScaleoutReport struct {
	Iterations int                 `json:"iterations"`
	Rows       []ReplayScaleoutRow `json:"rows"`
	// BalancedGainZipfG8 / StealingGainZipfG8 are the headline ratios:
	// static makespan over balanced/stealing makespan on the skewed
	// scenario at G=8 (the acceptance bar is ≥ 1.5).
	BalancedGainZipfG8 float64 `json:"balanced_gain_zipf_g8"`
	StealingGainZipfG8 float64 `json:"stealing_gain_zipf_g8"`
	// UniformWorstVsStatic is the smallest static/policy makespan ratio
	// observed on the uniform scenario — < 1 would mean a regression where
	// the seed scheduler was already optimal.
	UniformWorstVsStatic float64 `json:"uniform_worst_vs_static"`
}

// ReplayScaleout compares Static, Balanced and Stealing replay scheduling in
// virtual time over synthetic uniform and Zipf-skewed cost vectors, printing
// a table and a machine-readable BENCH JSON line. The simulation runs the
// same internal/sched partitioners and stealing policy as real replay.
func (s *Session) ReplayScaleout() (*ReplayScaleoutReport, error) {
	rep := &ReplayScaleoutReport{Iterations: scaleoutIters, UniformWorstVsStatic: math.Inf(1)}
	policies := []sched.Policy{sched.Static, sched.Balanced, sched.Stealing}
	for _, sc := range scaleoutScenarios() {
		for _, g := range []int{4, 8, 16} {
			staticNs := int64(0)
			for _, policy := range policies {
				vr := cluster.SimulateSched(sc.costs, g, replay.Weak, true, policy)
				row := ReplayScaleoutRow{
					Scenario:   sc.name,
					Scheduler:  policy.String(),
					G:          g,
					MakespanNs: vr.MakespanNs,
					Speedup:    vr.SpeedupFactor,
					Steals:     vr.Steals,
				}
				if policy == sched.Static {
					staticNs = vr.MakespanNs
				}
				if staticNs > 0 && vr.MakespanNs > 0 {
					row.VsStatic = float64(staticNs) / float64(vr.MakespanNs)
				}
				if sc.name == "zipf" && g == 8 {
					switch policy {
					case sched.Balanced:
						rep.BalancedGainZipfG8 = row.VsStatic
					case sched.Stealing:
						rep.StealingGainZipfG8 = row.VsStatic
					}
				}
				if sc.name == "uniform" && policy != sched.Static && row.VsStatic < rep.UniformWorstVsStatic {
					rep.UniformWorstVsStatic = row.VsStatic
				}
				rep.Rows = append(rep.Rows, row)
			}
		}
	}

	s.printf("\nReplay scale-out: scheduler comparison (virtual time, weak init, inner probe,\n")
	s.printf("%d iterations; zipf skew s=%.1f redistributes the uniform compute head-heavily).\n",
		scaleoutIters, zipfS)
	s.printf("%-8s %-9s %4s %14s %10s %10s %7s\n", "scenario", "sched", "G", "makespan", "speedup", "vs static", "steals")
	for _, r := range rep.Rows {
		s.printf("%-8s %-9s %4d %13.3fs %9.2fx %9.2fx %7d\n",
			r.Scenario, r.Scheduler, r.G, sec(r.MakespanNs), r.Speedup, r.VsStatic, r.Steals)
	}
	s.printf("zipf G=8 gains: balanced %.2fx, stealing %.2fx over static (target ≥ 1.5x);\n",
		rep.BalancedGainZipfG8, rep.StealingGainZipfG8)
	s.printf("uniform worst-case vs static: %.3fx (1.0 = no regression)\n", rep.UniformWorstVsStatic)

	js, err := json.Marshal(rep)
	if err != nil {
		return nil, err
	}
	s.printf("BENCH JSON %s\n", js)
	return rep, nil
}
