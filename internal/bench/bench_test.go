package bench

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"flor.dev/flor/internal/workloads"
)

// smokeSession builds a session at smoke scale with single-trial timing so
// the unit tests stay fast; the shape assertions do not depend on timing
// precision.
func smokeSession(t *testing.T) *Session {
	t.Helper()
	old := Trials
	Trials = 1
	t.Cleanup(func() { Trials = old })
	return NewSession(t.TempDir(), workloads.Smoke, &bytes.Buffer{})
}

func TestRunCachesWorkloads(t *testing.T) {
	s := smokeSession(t)
	a, err := s.Run("ImgN")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Run("ImgN")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("second Run did not return the cached run")
	}
	if a.VanillaNs <= 0 || a.Record == nil {
		t.Fatal("run missing measurements")
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	s := smokeSession(t)
	if _, err := s.Run("Ghost"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestDeriveFillsIterationCosts(t *testing.T) {
	s := smokeSession(t)
	wr, err := s.Run("Jasp")
	if err != nil {
		t.Fatal(err)
	}
	if wr.Epochs() != wr.Spec.Epochs(workloads.Smoke) {
		t.Fatalf("epochs = %d", wr.Epochs())
	}
	costs := wr.IterationCosts()
	if len(costs.ComputNs) != wr.Epochs() {
		t.Fatalf("cost vector length %d", len(costs.ComputNs))
	}
	for i, c := range costs.ComputNs {
		if c <= 0 {
			t.Fatalf("epoch %d has no compute cost", i)
		}
	}
}

func TestTable3Output(t *testing.T) {
	var buf bytes.Buffer
	s := NewSession(t.TempDir(), workloads.Smoke, &buf)
	s.Table3()
	out := buf.String()
	for _, name := range workloads.Names() {
		if !strings.Contains(out, name) {
			t.Fatalf("Table 3 output missing %s", name)
		}
	}
	if !strings.Contains(out, "200") || !strings.Contains(out, "Fine-Tune") {
		t.Fatal("Table 3 missing epoch counts or modes")
	}
}

func TestFig5Shape(t *testing.T) {
	s := smokeSession(t)
	rep, err := s.Fig5(3)
	if err != nil {
		t.Fatal(err)
	}
	base := rep.CallerBlockedNs["Baseline"]
	queue := rep.CallerBlockedNs["IPC-Queue"]
	fork := rep.CallerBlockedNs["Fork"]
	plasma := rep.CallerBlockedNs["IPC-Plasma"]
	if base <= 0 || queue <= 0 || fork <= 0 || plasma <= 0 {
		t.Fatalf("missing strategies: %+v", rep.CallerBlockedNs)
	}
	// The paper's ordering: Baseline pays serialization and write on the
	// caller; Queue pays serialization; Fork and Plasma pay only snapshot.
	if base <= queue {
		t.Fatalf("Baseline (%d) should exceed Queue (%d)", base, queue)
	}
	if queue <= fork || queue <= plasma {
		t.Fatalf("Queue (%d) should exceed Fork (%d) and Plasma (%d)", queue, fork, plasma)
	}
}

func TestFig7Shape(t *testing.T) {
	s := smokeSession(t)
	rep, err := s.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 8 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	for _, r := range rep.Rows {
		// Disabled mode checkpoints every epoch.
		if r.DisabledCkpts == 0 {
			t.Fatalf("%s: disabled run materialized nothing", r.Name)
		}
		if r.Checkpoints > r.DisabledCkpts {
			t.Fatalf("%s: adaptive materialized more than disabled (%d > %d)",
				r.Name, r.Checkpoints, r.DisabledCkpts)
		}
	}
}

func TestFig10FractionsBounded(t *testing.T) {
	s := smokeSession(t)
	rep, err := s.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Rows {
		if r.WeakFraction < r.FloorFraction*0.99 {
			t.Fatalf("%s: weak fraction %.3f below the ideal floor %.3f",
				r.Name, r.WeakFraction, r.FloorFraction)
		}
		if r.StrongFraction < r.WeakFraction*0.99 {
			t.Fatalf("%s: strong fraction %.3f below weak %.3f (strong does strictly more init work)",
				r.Name, r.StrongFraction, r.WeakFraction)
		}
		if r.WeakFraction > 1.01 {
			t.Fatalf("%s: parallel replay slower than sequential: %.3f", r.Name, r.WeakFraction)
		}
	}
}

func TestFig13NearIdealVirtualScaling(t *testing.T) {
	s := smokeSession(t)
	rep, err := s.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for i, g := range rep.GPUs {
		if rep.Speedup[i] > rep.Ideal[i]*1.001 {
			t.Fatalf("G=%d speedup %.2f exceeds ideal %.2f", g, rep.Speedup[i], rep.Ideal[i])
		}
		// At smoke scale (6 epochs) setup dominates, so only monotonicity
		// and the ideal bound are asserted here; near-ideality at 200
		// epochs is demonstrated by florbench at full scale.
		if rep.Speedup[i] < prev*0.999 {
			t.Fatalf("speedup not monotone: G=%d %.2f after %.2f", g, rep.Speedup[i], prev)
		}
		prev = rep.Speedup[i]
	}
	if rep.Speedup[len(rep.Speedup)-1] < 1.5 {
		t.Fatalf("max speedup %.2f shows no parallelism", rep.Speedup[len(rep.Speedup)-1])
	}
}

func TestFig14CostsComparable(t *testing.T) {
	s := smokeSession(t)
	rep, err := s.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Rows {
		if r.ParallelNs >= r.SerialNs {
			t.Fatalf("%s: parallel replay (%d) not faster than serial (%d)", r.Name, r.ParallelNs, r.SerialNs)
		}
		// Same price per GPU-hour: costs stay within a small factor despite
		// the big wall-clock gap. At smoke scale per-worker setup dominates
		// the one-epoch segments (worst case ~8x: every GPU billed mostly
		// for setup); at full scale florbench measures ~1.3x.
		if r.ParallelCost > r.SerialCost*10 {
			t.Fatalf("%s: parallel cost %.4f far exceeds serial %.4f", r.Name, r.ParallelCost, r.SerialCost)
		}
	}
}

func TestFig12OuterProbeIsPartialReplay(t *testing.T) {
	s := smokeSession(t)
	rep, err := s.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Rows {
		if r.OuterReplayNs <= 0 || r.InnerVirtReplayNs <= 0 {
			t.Fatalf("%s: missing replay measurements %+v", r.Name, r)
		}
		if r.InnerVirtSpeedup < 1 {
			t.Fatalf("%s: virtual parallel replay slower than sequential", r.Name)
		}
	}
}

func TestSerVsIOBackgroundBeatsOnThread(t *testing.T) {
	// The defining claim of §5.1: moving materialization off the training
	// thread reduces the overhead the thread observes. The mechanism needs a
	// core for the background thread to run on; on a single-CPU host it only
	// adds context switches, so the two overheads tie within scheduler noise
	// and the comparison is a coin flip. Exercise the path there, but assert
	// the claim only where it can hold.
	if runtime.NumCPU() < 2 {
		if _, err := smokeSession(t).SerVsIO([]string{"Jasp", "ImgN"}); err != nil {
			t.Fatal(err)
		}
		t.Skip("single-CPU host: background materialization cannot overlap compute")
	}
	// On multi-core hosts the overheads are still percent-level numbers, so
	// the claim is checked over a few attempts rather than one sample.
	var last *SerVsIOReport
	for attempt := 0; attempt < 3; attempt++ {
		s := smokeSession(t)
		rep, err := s.SerVsIO([]string{"Jasp", "ImgN"})
		if err != nil {
			t.Fatal(err)
		}
		if rep.ForkOverhead < rep.BaselineOverhead {
			return
		}
		last = rep
	}
	t.Fatalf("background overhead %.4f not below on-thread %.4f in any attempt",
		last.ForkOverhead, last.BaselineOverhead)
}

func TestCFactorPositive(t *testing.T) {
	s := smokeSession(t)
	c, err := s.CFactor()
	if err != nil {
		t.Fatal(err)
	}
	if c <= 0 {
		t.Fatalf("c = %g", c)
	}
}

func TestReplayScaleoutAcceptance(t *testing.T) {
	s := smokeSession(t)
	rep, err := s.ReplayScaleout()
	if err != nil {
		t.Fatal(err)
	}
	if rep.BalancedGainZipfG8 < 1.5 {
		t.Fatalf("balanced gain on zipf at G=8 = %.2fx, want >= 1.5x", rep.BalancedGainZipfG8)
	}
	if rep.StealingGainZipfG8 < 1.5 {
		t.Fatalf("stealing gain on zipf at G=8 = %.2fx, want >= 1.5x", rep.StealingGainZipfG8)
	}
	if rep.UniformWorstVsStatic < 0.999 {
		t.Fatalf("uniform scenario regressed: worst vs-static ratio %.3f", rep.UniformWorstVsStatic)
	}
	// G >= 8 rows on zipf must all clear the bar, not just the headline.
	for _, r := range rep.Rows {
		if r.Scenario == "zipf" && r.G >= 8 && r.Scheduler != "static" && r.VsStatic < 1.5 {
			t.Fatalf("zipf G=%d %s vs static = %.2fx, want >= 1.5x", r.G, r.Scheduler, r.VsStatic)
		}
	}
}

func TestServeThroughputSmoke(t *testing.T) {
	s := smokeSession(t)
	old := ServeQueryCount
	ServeQueryCount = 6
	t.Cleanup(func() { ServeQueryCount = old })
	rep, err := s.ServeThroughput()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 (cold/hot x 1/4/16 clients)", len(rep.Rows))
	}
	for _, r := range rep.Rows {
		if r.QPS <= 0 || r.P50Ns <= 0 || r.P95Ns < r.P50Ns {
			t.Fatalf("implausible row %+v", r)
		}
		if r.Mode == "hot" && r.StoreMisses != 0 {
			t.Fatalf("hot cell missed the store cache: %+v", r)
		}
		// Cold cells may still hit when concurrent queries on the same run
		// overlap, but the alternating run order forces reopens.
		if r.Mode == "cold" && r.StoreMisses == 0 {
			t.Fatalf("cold cell never reopened a store: %+v", r)
		}
	}
	if rep.HotHitRate != 1.0 {
		t.Fatalf("hot hit rate = %.2f, want 1.0", rep.HotHitRate)
	}
	// The hot-vs-cold latency *gap* is a benchmark property: it is asserted
	// against the persisted full-scale BENCH_serve.json, not at smoke scale
	// with a handful of microsecond queries, where scheduling noise wins.
	if rep.HotColdP50Ratio <= 0 {
		t.Fatalf("hot/cold ratio not computed: %+v", rep)
	}
}

// TestFinetuneFamilyPoolAcceptance is the cross-run dedup acceptance bar: a
// 4-run fine-tuning family over one frozen backbone must store at least 3x
// less in a shared chunk pool than in per-run private packs, with the
// pool-wide payload cache not slowing the family restore down.
func TestFinetuneFamilyPoolAcceptance(t *testing.T) {
	s := smokeSession(t)
	priv, pooled, reduction, restoreSpeedup, err := s.FinetuneFamily(4)
	if err != nil {
		t.Fatal(err)
	}
	if reduction < 3 {
		t.Fatalf("family storage reduction = %.2fx (private %+v, pooled %+v); acceptance bar is >= 3x", reduction, priv, pooled)
	}
	if pooled.DedupRatio <= priv.DedupRatio {
		t.Fatalf("pooled family dedup ratio %.2f not above private %.2f", pooled.DedupRatio, priv.DedupRatio)
	}
	// Restore throughput is timing-noisy on shared CI cores: require only
	// that pool-wide caching does not catastrophically regress the restore.
	if restoreSpeedup < 0.5 {
		t.Fatalf("shared-restore speedup = %.2fx; pooled restore regressed", restoreSpeedup)
	}
}
