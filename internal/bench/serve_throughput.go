package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"flor.dev/flor/internal/obs"
	"flor.dev/flor/internal/script"
	"flor.dev/flor/internal/serve"
	"flor.dev/flor/internal/workloads"
)

// Serve-throughput scenario parameters. The workload mix mirrors the
// hindsight-logging workflow the daemon exists for: repeated probed replay
// queries over a small family of runs, interleaved with cheap point
// (sample) queries — every third query is a sample.
var (
	// ServeQueryCount is the number of queries measured per (mode, clients)
	// cell; tests shrink it.
	ServeQueryCount = 24
	// serveClientCounts are the concurrent-client levels measured.
	serveClientCounts = []int{1, 4, 16}
)

// ServeThroughputRow is one (mode, clients) measurement.
type ServeThroughputRow struct {
	Mode    string  `json:"mode"` // "cold" or "hot"
	Clients int     `json:"clients"`
	Queries int     `json:"queries"`
	QPS     float64 `json:"qps"`
	P50Ns   int64   `json:"p50_ns"`
	P95Ns   int64   `json:"p95_ns"`
	// StoreHits/StoreMisses are the open-store LRU counters accumulated
	// during this cell's queries (cold cells miss on every alternation,
	// hot cells hit after warmup).
	StoreHits   int64 `json:"store_hits"`
	StoreMisses int64 `json:"store_misses"`
	// AllocsPerQuery / AllocBytesPerQuery are process-wide heap allocation
	// counts amortized over the cell's queries (runtime.MemStats deltas
	// around the measured section) — the obs-overhead comparison reads them.
	AllocsPerQuery     int64 `json:"allocs_per_query"`
	AllocBytesPerQuery int64 `json:"alloc_bytes_per_query"`
}

// ObsOverheadRow is one hot serving cell measured with the metrics registry
// in a given state.
type ObsOverheadRow struct {
	Registry           string  `json:"registry"` // "disabled" or "enabled"
	QPS                float64 `json:"qps"`
	P50Ns              int64   `json:"p50_ns"`
	P95Ns              int64   `json:"p95_ns"`
	AllocsPerQuery     int64   `json:"allocs_per_query"`
	AllocBytesPerQuery int64   `json:"alloc_bytes_per_query"`
}

// ObsOverheadReport compares identical hot serving cells with the obs
// registry disabled (nil handles, the default) vs enabled (atomic counters
// live). The acceptance bar is a p50 delta within noise for disabled and a
// small single-digit percentage enabled.
type ObsOverheadReport struct {
	Clients int              `json:"clients"`
	Rows    []ObsOverheadRow `json:"rows"`
	// P50DeltaPct is (enabled p50 − disabled p50) / disabled p50 × 100.
	P50DeltaPct float64 `json:"p50_delta_pct"`
	// Alloc deltas per query attributable to the enabled registry.
	AllocsDeltaPerQuery     int64 `json:"allocs_delta_per_query"`
	AllocBytesDeltaPerQuery int64 `json:"alloc_bytes_delta_per_query"`
}

// ServeThroughputReport is the serve-throughput benchmark output
// (BENCH_serve.json).
type ServeThroughputReport struct {
	Runs       []string             `json:"runs"`
	Slots      int                  `json:"slots"`
	QueriesPer int                  `json:"queries_per_cell"`
	Rows       []ServeThroughputRow `json:"rows"`
	// HotColdP50Ratio is the headline: cold p50 latency over hot p50
	// latency at the middle client level — how much a hot store (manifest
	// replayed once, payloads cached) buys a repeated query.
	HotColdP50Ratio float64 `json:"hot_cold_p50_ratio"`
	// HotHitRate is the store-cache hit rate across all hot cells (1.0 =
	// every measured hot query found its store open).
	HotHitRate float64 `json:"hot_hit_rate"`
	// ObsOverhead records the wall-clock and allocation cost of the metrics
	// registry on the hot serving path.
	ObsOverhead *ObsOverheadReport `json:"obs_overhead,omitempty"`
}

// serveBenchRun pairs a registered run ID with its query factories and
// main-loop iteration count (bounds sample queries).
type serveBenchRun struct {
	id    string
	dir   string
	iters int
	fns   map[string]func() *script.Program
}

// ServeThroughput measures the flord daemon's query throughput and latency
// at 1/4/16 concurrent clients over cold vs hot stores. Queries go through
// the full serving path — admission control, store LRU, shared worker pool —
// in-process (no HTTP), so the numbers isolate the daemon, not the codec of
// the wire. "Cold" forces an open-store LRU of one below two alternating
// runs, so every query reopens its store (manifest replayed, caches empty);
// "hot" sizes the LRU to fit and warms both runs first.
func (s *Session) ServeThroughput() (*ServeThroughputReport, error) {
	var runs []serveBenchRun
	for _, name := range []string{"ImgN", "Jasp"} {
		wr, err := s.Run(name)
		if err != nil {
			return nil, err
		}
		runs = append(runs, serveBenchRun{
			id:    name,
			dir:   wr.Dir,
			iters: wr.Epochs(),
			fns: map[string]func() *script.Program{
				"base":  wr.Factory,
				"outer": workloads.WithOuterProbe(wr.Factory),
			},
		})
	}

	slots := 2 * runtime.GOMAXPROCS(0)
	rep := &ServeThroughputReport{
		Runs:       []string{runs[0].id, runs[1].id},
		Slots:      slots,
		QueriesPer: ServeQueryCount,
	}
	var hotHits, hotTotal int64
	for _, mode := range []string{"cold", "hot"} {
		for _, clients := range serveClientCounts {
			row, err := serveCell(runs, mode, clients, slots)
			if err != nil {
				return nil, err
			}
			rep.Rows = append(rep.Rows, *row)
			if mode == "hot" {
				hotHits += row.StoreHits
				hotTotal += row.StoreHits + row.StoreMisses
			}
		}
	}
	if hotTotal > 0 {
		rep.HotHitRate = float64(hotHits) / float64(hotTotal)
	}
	mid := serveClientCounts[1]
	var coldP50, hotP50 int64
	for _, r := range rep.Rows {
		if r.Clients == mid && r.Mode == "cold" {
			coldP50 = r.P50Ns
		}
		if r.Clients == mid && r.Mode == "hot" {
			hotP50 = r.P50Ns
		}
	}
	if hotP50 > 0 {
		rep.HotColdP50Ratio = float64(coldP50) / float64(hotP50)
	}
	ov, err := obsOverhead(runs, slots)
	if err != nil {
		return nil, err
	}
	rep.ObsOverhead = ov

	s.printf("\nServe throughput: %d queries per cell over runs %v (2:1 replay:sample mix),\n",
		ServeQueryCount, rep.Runs)
	s.printf("one shared %d-slot pool; cold = store LRU of 1 under 2 alternating runs.\n", slots)
	s.printf("%-5s %8s %8s %12s %12s %6s %7s\n", "mode", "clients", "qps", "p50", "p95", "hits", "misses")
	for _, r := range rep.Rows {
		s.printf("%-5s %8d %8.1f %11.3fms %11.3fms %6d %7d\n",
			r.Mode, r.Clients, r.QPS, float64(r.P50Ns)/1e6, float64(r.P95Ns)/1e6, r.StoreHits, r.StoreMisses)
	}
	s.printf("hot/cold p50 gain at %d clients: %.2fx; hot hit rate %.2f\n",
		mid, rep.HotColdP50Ratio, rep.HotHitRate)
	s.printf("obs overhead at %d clients: p50 %+.1f%%, %+d allocs/query (%+d B)\n",
		ov.Clients, ov.P50DeltaPct, ov.AllocsDeltaPerQuery, ov.AllocBytesDeltaPerQuery)

	js, err := json.Marshal(rep)
	if err != nil {
		return nil, err
	}
	s.printf("BENCH JSON %s\n", js)
	return rep, nil
}

// obsOverhead measures the same hot serving cell back to back with the
// metrics registry disabled, then enabled. The daemon is constructed inside
// each cell, so the enabled run resolves live handles everywhere the
// instrumented layers do.
func obsOverhead(runs []serveBenchRun, slots int) (*ObsOverheadReport, error) {
	const clients = 4
	rep := &ObsOverheadReport{Clients: clients}
	wasEnabled := obs.Default() != nil
	defer func() {
		if wasEnabled {
			obs.Enable()
		} else {
			obs.Disable()
		}
	}()
	for _, state := range []string{"disabled", "enabled"} {
		if state == "enabled" {
			obs.Enable()
		} else {
			obs.Disable()
		}
		row, err := serveCell(runs, "hot", clients, slots)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, ObsOverheadRow{
			Registry:           state,
			QPS:                row.QPS,
			P50Ns:              row.P50Ns,
			P95Ns:              row.P95Ns,
			AllocsPerQuery:     row.AllocsPerQuery,
			AllocBytesPerQuery: row.AllocBytesPerQuery,
		})
	}
	d, e := rep.Rows[0], rep.Rows[1]
	if d.P50Ns > 0 {
		rep.P50DeltaPct = 100 * float64(e.P50Ns-d.P50Ns) / float64(d.P50Ns)
	}
	rep.AllocsDeltaPerQuery = e.AllocsPerQuery - d.AllocsPerQuery
	rep.AllocBytesDeltaPerQuery = e.AllocBytesPerQuery - d.AllocBytesPerQuery
	return rep, nil
}

// serveCell measures one (mode, clients) cell on a fresh daemon.
func serveCell(runs []serveBenchRun, mode string, clients, slots int) (*ServeThroughputRow, error) {
	cacheSize := len(runs) + 2
	if mode == "cold" {
		cacheSize = 1
	}
	srv := serve.New(serve.Options{
		Slots:             slots,
		MaxInflightPerRun: clients,
		MaxQueuePerRun:    2 * ServeQueryCount,
		QueueTimeout:      time.Minute,
		StoreCacheSize:    cacheSize,
		DefaultWorkers:    2,
	})
	for _, r := range runs {
		if err := srv.Register(serve.RunConfig{ID: r.id, Dir: r.dir, Factories: r.fns}); err != nil {
			return nil, err
		}
	}
	ctx := context.Background()
	if mode == "hot" {
		// Warm both stores (and their payload caches) before measuring.
		for _, r := range runs {
			if _, err := srv.Replay(ctx, r.id, serve.ReplayRequest{Probe: "outer", Workers: 2}); err != nil {
				return nil, err
			}
		}
	}
	warmStats := srv.Stats().StoreCache

	latencies := make([]int64, ServeQueryCount)
	errs := make([]error, ServeQueryCount)
	next := make(chan int)
	var wg sync.WaitGroup
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := range next {
				// Alternate runs query-by-query (the cold-cache worst case);
				// every third query is a cheap sample.
				r := runs[q%len(runs)]
				q0 := time.Now()
				var err error
				if q%3 == 2 {
					iters := []int{0}
					if r.iters > 1 {
						a := q % (r.iters - 1)
						iters = []int{a, a + 1}
					}
					_, err = srv.Sample(ctx, r.id, serve.SampleRequest{
						Probe: "outer", Iterations: iters,
					})
				} else {
					_, err = srv.Replay(ctx, r.id, serve.ReplayRequest{Probe: "outer", Workers: 2})
				}
				latencies[q] = time.Since(q0).Nanoseconds()
				errs[q] = err
			}
		}()
	}
	for q := 0; q < ServeQueryCount; q++ {
		next <- q
	}
	close(next)
	wg.Wait()
	wall := time.Since(t0)
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	for q, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("bench: serve %s/%d query %d: %w", mode, clients, q, err)
		}
	}

	cs := srv.Stats().StoreCache
	sorted := append([]int64(nil), latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	row := &ServeThroughputRow{
		Mode:        mode,
		Clients:     clients,
		Queries:     ServeQueryCount,
		QPS:         float64(ServeQueryCount) / wall.Seconds(),
		P50Ns:       percentile(sorted, 0.50),
		P95Ns:       percentile(sorted, 0.95),
		StoreHits:   cs.Hits - warmStats.Hits,
		StoreMisses: cs.Misses - warmStats.Misses,

		AllocsPerQuery:     int64(m1.Mallocs-m0.Mallocs) / int64(ServeQueryCount),
		AllocBytesPerQuery: int64(m1.TotalAlloc-m0.TotalAlloc) / int64(ServeQueryCount),
	}
	return row, nil
}

// percentile returns the p-quantile of sorted (nearest-rank: the smallest
// value with at least p·n values at or below it).
func percentile(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
