// Package nn provides neural-network layers and the model architectures used
// by the paper's eight evaluation workloads (Table 3 analogues).
//
// Models are Modules: trees of named parameters built on the autograd
// substrate. Two properties matter for Flor:
//
//   - Parameters are enumerable in a deterministic order with stable names,
//     so checkpoints capture and restore exactly the model state.
//   - Parameters can be frozen (fine-tuning), which is what gives the RTE and
//     CoLA workloads their signature "enormous checkpoint, tiny epoch"
//     profile that exercises adaptive checkpointing (paper §5.3.4).
package nn

import (
	"fmt"

	"flor.dev/flor/internal/autograd"
	"flor.dev/flor/internal/tensor"
)

// Param is a named trainable (or frozen) tensor.
type Param struct {
	Name string
	Var  *autograd.Var
}

// Module is anything exposing an ordered list of named parameters.
type Module interface {
	// Params returns the module's parameters in a deterministic order with
	// unique names.
	Params() []Param
}

// NumParams returns the total element count across all parameters of m.
func NumParams(m Module) int {
	n := 0
	for _, p := range m.Params() {
		n += p.Var.Value.Len()
	}
	return n
}

// TrainableParams returns only the parameters that participate in gradients.
func TrainableParams(m Module) []Param {
	var out []Param
	for _, p := range m.Params() {
		if p.Var.RequiresGrad() {
			out = append(out, p)
		}
	}
	return out
}

// Freeze marks every parameter whose name has the given prefix as excluded
// from gradient computation. It returns the number of parameters frozen.
func Freeze(m Module, prefix string) int {
	n := 0
	for _, p := range m.Params() {
		if hasPrefix(p.Name, prefix) {
			p.Var.SetRequiresGrad(false)
			n++
		}
	}
	return n
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}

// ZeroGrads clears accumulated gradients on all parameters.
func ZeroGrads(m Module) {
	for _, p := range m.Params() {
		p.Var.ZeroGrad()
	}
}

// GradNorm returns the L2 norm of the concatenated gradients of all
// trainable parameters; a standard training-health diagnostic and the value
// Alice probes in the paper's §2.1 scenario.
func GradNorm(m Module) float64 {
	sum := 0.0
	for _, p := range m.Params() {
		if !p.Var.RequiresGrad() || p.Var.Grad == nil {
			continue
		}
		n := p.Var.Grad.Norm()
		sum += n * n
	}
	return sqrt(sum)
}

// WeightNorm returns the L2 norm of the concatenated parameter values.
func WeightNorm(m Module) float64 {
	sum := 0.0
	for _, p := range m.Params() {
		n := p.Var.Value.Norm()
		sum += n * n
	}
	return sqrt(sum)
}

func sqrt(x float64) float64 {
	// Newton's method is unnecessary; defer to math through tensor to keep
	// import surface minimal here.
	return tensor.Scalar(x).Norm()
}

// CloneState deep-copies every parameter value of m into a name-keyed map;
// used by tests and by state snapshots.
func CloneState(m Module) map[string]*tensor.Tensor {
	out := make(map[string]*tensor.Tensor)
	for _, p := range m.Params() {
		out[p.Name] = p.Var.Value.Clone()
	}
	return out
}

// LoadState copies values from a name-keyed map into m's parameters. Every
// parameter of m must be present with a matching shape.
func LoadState(m Module, state map[string]*tensor.Tensor) error {
	for _, p := range m.Params() {
		src, ok := state[p.Name]
		if !ok {
			return fmt.Errorf("nn: LoadState missing parameter %q", p.Name)
		}
		if !tensor.SameShape(src, p.Var.Value) {
			return fmt.Errorf("nn: LoadState shape mismatch for %q: %v vs %v",
				p.Name, src.Shape(), p.Var.Value.Shape())
		}
		p.Var.Value.CopyFrom(src)
	}
	return nil
}

// StatesEqual reports whether two modules have identical parameter values.
func StatesEqual(a, b Module) bool {
	pa, pb := a.Params(), b.Params()
	if len(pa) != len(pb) {
		return false
	}
	for i := range pa {
		if pa[i].Name != pb[i].Name || !tensor.Equal(pa[i].Var.Value, pb[i].Var.Value) {
			return false
		}
	}
	return true
}
