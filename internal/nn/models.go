package nn

import (
	"flor.dev/flor/internal/autograd"
	"flor.dev/flor/internal/tensor"
	"flor.dev/flor/internal/xrand"
)

// Classifier is the interface shared by all image/sequence classification
// models: map a (batch, features) input to (batch, classes) logits.
type Classifier interface {
	Module
	Forward(t *autograd.Tape, x *autograd.Var) *autograd.Var
}

// ConvNet is the "Squeezenet" analogue (workloads Cifr and ImgN): a 1-D
// convolutional feature extractor followed by a linear classifier.
type ConvNet struct {
	conv1 *Conv1DLayer
	conv2 *Conv1DLayer
	head  *Linear

	inLen   int
	k1, l1  int
	k2, l2  int
	headIn  int
	classes int
}

// NewConvNet constructs a ConvNet for inputs of length inLen with the given
// kernel bank sizes and class count.
func NewConvNet(rng *xrand.RNG, inLen, kernels1, klen1, kernels2, klen2, classes int) *ConvNet {
	out1 := inLen - klen1 + 1
	out2 := out1 - klen2 + 1
	headIn := kernels1 * kernels2 * out2
	return &ConvNet{
		conv1:   NewConv1DLayer("conv1", rng, kernels1, klen1),
		conv2:   NewConv1DLayer("conv2", rng, kernels2, klen2),
		head:    NewLinear("head", rng, headIn, classes),
		inLen:   inLen,
		k1:      kernels1,
		l1:      klen1,
		k2:      kernels2,
		l2:      klen2,
		headIn:  headIn,
		classes: classes,
	}
}

// Forward maps x (batch, inLen) to logits (batch, classes).
func (c *ConvNet) Forward(t *autograd.Tape, x *autograd.Var) *autograd.Var {
	batch := x.Value.Dim(0)
	h := t.Relu(c.conv1.Forward(t, x))       // (batch*k1, out1)
	h = t.Relu(c.conv2.Forward(t, h))        // (batch*k1*k2, out2)
	flat := t.ReshapeVar(h, batch, c.headIn) // (batch, k1*k2*out2)
	return c.head.Forward(t, flat)
}

// Params implements Module.
func (c *ConvNet) Params() []Param {
	var out []Param
	out = append(out, c.conv1.Params()...)
	out = append(out, c.conv2.Params()...)
	out = append(out, c.head.Params()...)
	return out
}

// ResidualMLP is the "ResNet-152" analogue (workload RsNt): a deep stack of
// width-preserving residual blocks over a linear stem.
type ResidualMLP struct {
	stem   *Linear
	blocks []*ResidualBlock
	head   *Linear
}

// NewResidualMLP constructs depth residual blocks of the given width.
func NewResidualMLP(rng *xrand.RNG, in, width, hidden, depth, classes int) *ResidualMLP {
	m := &ResidualMLP{
		stem: NewLinear("stem", rng, in, width),
		head: NewLinear("head", rng, width, classes),
	}
	for i := 0; i < depth; i++ {
		m.blocks = append(m.blocks, NewResidualBlock(blockName("block", i), rng, width, hidden))
	}
	return m
}

func blockName(prefix string, i int) string {
	// Two-digit zero padding keeps lexical order equal to construction order.
	const digits = "0123456789"
	return prefix + "." + string([]byte{digits[i/10%10], digits[i%10]})
}

// Forward maps x (batch, in) to logits.
func (m *ResidualMLP) Forward(t *autograd.Tape, x *autograd.Var) *autograd.Var {
	h := t.Relu(m.stem.Forward(t, x))
	for _, b := range m.blocks {
		h = b.Forward(t, h)
	}
	return m.head.Forward(t, h)
}

// Params implements Module.
func (m *ResidualMLP) Params() []Param {
	var out []Param
	out = append(out, m.stem.Params()...)
	for _, b := range m.blocks {
		out = append(out, b.Params()...)
	}
	out = append(out, m.head.Params()...)
	return out
}

// Transformer is the "RoBERTa" analogue. It serves three workloads:
// Wiki (language modeling over token streams), and RTE/CoLA (fine-tuning:
// the backbone is frozen and only the classification head trains).
type Transformer struct {
	embed  *Embedding
	pos    *Embedding
	blocks []*TransformerBlock
	head   *Linear

	seqLen int
	dim    int
}

// NewTransformer constructs a transformer over vocab-sized tokens with
// maximum sequence length seqLen.
func NewTransformer(rng *xrand.RNG, vocab, seqLen, dim, hidden, depth, classes int) *Transformer {
	m := &Transformer{
		embed:  NewEmbedding("backbone.embed", rng, vocab, dim),
		pos:    NewEmbedding("backbone.pos", rng, seqLen, dim),
		head:   NewLinear("head", rng, dim, classes),
		seqLen: seqLen,
		dim:    dim,
	}
	for i := 0; i < depth; i++ {
		m.blocks = append(m.blocks, NewTransformerBlock(blockName("backbone.block", i), rng, dim, hidden))
	}
	return m
}

// FreezeBackbone freezes the embedding and all transformer blocks, leaving
// only the head trainable — the fine-tuning configuration of RTE and CoLA.
func (m *Transformer) FreezeBackbone() int {
	return Freeze(m, "backbone.")
}

// Encode runs the backbone over one token sequence, returning (seqLen, dim)
// hidden states.
func (m *Transformer) Encode(t *autograd.Tape, tokens []int) *autograd.Var {
	posIDs := make([]int, len(tokens))
	for i := range posIDs {
		posIDs[i] = i % m.seqLen
	}
	h := t.Add(m.embed.Forward(t, tokens), m.pos.Forward(t, posIDs))
	for _, b := range m.blocks {
		h = b.Forward(t, h)
	}
	return h
}

// ClassifyLogits mean-pools the encoded sequence and applies the head,
// producing (1, classes) logits for one sequence.
func (m *Transformer) ClassifyLogits(t *autograd.Tape, tokens []int) *autograd.Var {
	h := m.Encode(t, tokens)
	pooled := t.MeanRows(h)
	return m.head.Forward(t, pooled)
}

// LMLogits returns per-position next-token logits (seqLen, classes) for one
// sequence; used by the Wiki language-modeling workload.
func (m *Transformer) LMLogits(t *autograd.Tape, tokens []int) *autograd.Var {
	return m.head.Forward(t, m.Encode(t, tokens))
}

// Params implements Module.
func (m *Transformer) Params() []Param {
	var out []Param
	out = append(out, m.embed.Params()...)
	out = append(out, m.pos.Params()...)
	for _, b := range m.blocks {
		out = append(out, b.Params()...)
	}
	out = append(out, m.head.Params()...)
	return out
}

// ConvSpeech is the "Jasper" analogue (workload Jasp): a deep stack of 1-D
// convolutions over audio-like frames with a per-utterance classifier.
type ConvSpeech struct {
	convs []*Conv1DLayer
	pool  *Linear
	head  *Linear

	inLen   int
	poolIn  int
	classes int
}

// NewConvSpeech constructs depth conv layers (each widthKernels kernels of
// length klen) over frames of length inLen.
func NewConvSpeech(rng *xrand.RNG, inLen, widthKernels, klen, depth, hidden, classes int) *ConvSpeech {
	m := &ConvSpeech{inLen: inLen, classes: classes}
	length := inLen
	for i := 0; i < depth; i++ {
		m.convs = append(m.convs, NewConv1DLayer(blockName("conv", i), rng, widthKernels, klen))
		length = length - klen + 1
	}
	// Row count multiplies by widthKernels at each layer; pool collapses the
	// final feature map to a fixed hidden width via mean-pool then linear.
	m.poolIn = length
	m.pool = NewLinear("pool", rng, length, hidden)
	m.head = NewLinear("head", rng, hidden, classes)
	return m
}

// Forward maps x (batch, inLen) to logits (batch, classes). After the conv
// stack, rows belonging to the same utterance are mean-pooled.
func (m *ConvSpeech) Forward(t *autograd.Tape, x *autograd.Var) *autograd.Var {
	batch := x.Value.Dim(0)
	h := x
	for _, c := range m.convs {
		h = t.Relu(c.Forward(t, h))
	}
	// h is (batch*prod(kernels), poolIn); mean-pool groups back to batch rows.
	group := h.Value.Dim(0) / batch
	pooled := t.MeanGroups(h, batch, group)
	return m.head.Forward(t, t.Relu(m.pool.Forward(t, pooled)))
}

// Params implements Module.
func (m *ConvSpeech) Params() []Param {
	var out []Param
	for _, c := range m.convs {
		out = append(out, c.Params()...)
	}
	out = append(out, m.pool.Params()...)
	out = append(out, m.head.Params()...)
	return out
}

// RNNAttention is the "RNN with attention" analogue (workload RnnT): an
// encoder RNN over source tokens, a decoder RNN with dot-product attention
// over encoder states, and a vocabulary head.
type RNNAttention struct {
	srcEmbed *Embedding
	tgtEmbed *Embedding
	encoder  *RNNCell
	decoder  *RNNCell
	head     *Linear
	hidden   int
}

// NewRNNAttention constructs the seq2seq model.
func NewRNNAttention(rng *xrand.RNG, vocab, dim, hidden int) *RNNAttention {
	return &RNNAttention{
		srcEmbed: NewEmbedding("src.embed", rng, vocab, dim),
		tgtEmbed: NewEmbedding("tgt.embed", rng, vocab, dim),
		encoder:  NewRNNCell("encoder", rng, dim, hidden),
		decoder:  NewRNNCell("decoder", rng, dim+hidden, hidden),
		head:     NewLinear("head", rng, 2*hidden, vocab),
		hidden:   hidden,
	}
}

// Logits teacher-forces the decoder over tgt given src, returning
// (len(tgt), vocab) next-token logits for one sentence pair.
func (m *RNNAttention) Logits(t *autograd.Tape, src, tgt []int) *autograd.Var {
	// Encode source.
	srcEmb := m.srcEmbed.Forward(t, src) // (S, dim)
	h := autograd.NewConst(tensor.New(1, m.hidden))
	encStates := make([]*autograd.Var, len(src))
	for i := range src {
		h = m.encoder.Step(t, t.RowVar(srcEmb, i), h)
		encStates[i] = h
	}
	enc := t.StackRows(encStates) // (S, hidden)
	// Decode with attention.
	tgtEmb := m.tgtEmbed.Forward(t, tgt) // (T, dim)
	d := h                               // decoder starts from final encoder state
	outs := make([]*autograd.Var, len(tgt))
	for i := range tgt {
		// Attention: scores over encoder states from current decoder state.
		scores := t.MatMul(d, t.TransposeVar(enc)) // (1, S)
		attn := t.SoftmaxRows(scores)
		ctx := t.MatMul(attn, enc) // (1, hidden)
		inp := t.ConcatRows(t.RowVar(tgtEmb, i), ctx)
		d = m.decoder.Step(t, inp, d)
		outs[i] = t.ConcatRows(d, ctx)
	}
	return m.head.Forward(t, t.StackRows(outs))
}

// Params implements Module.
func (m *RNNAttention) Params() []Param {
	var out []Param
	out = append(out, m.srcEmbed.Params()...)
	out = append(out, m.tgtEmbed.Params()...)
	out = append(out, m.encoder.Params()...)
	out = append(out, m.decoder.Params()...)
	out = append(out, m.head.Params()...)
	return out
}
