package nn

import (
	"fmt"
	"math"

	"flor.dev/flor/internal/autograd"
	"flor.dev/flor/internal/tensor"
	"flor.dev/flor/internal/xrand"
)

// Linear is a fully connected layer: y = xW + b with W shaped (in, out).
type Linear struct {
	name string
	W    *autograd.Var
	B    *autograd.Var
}

// NewLinear constructs a Xavier-initialized linear layer.
func NewLinear(name string, rng *xrand.RNG, in, out int) *Linear {
	w := tensor.Transpose(tensor.XavierUniform(rng, in, out)) // (in, out)
	return &Linear{
		name: name,
		W:    autograd.NewParam(w),
		B:    autograd.NewParam(tensor.New(out)),
	}
}

// Forward applies the layer to x (batch, in).
func (l *Linear) Forward(t *autograd.Tape, x *autograd.Var) *autograd.Var {
	return t.AddBias(t.MatMul(x, l.W), l.B)
}

// Params implements Module.
func (l *Linear) Params() []Param {
	return []Param{
		{Name: l.name + ".w", Var: l.W},
		{Name: l.name + ".b", Var: l.B},
	}
}

// Embedding maps integer ids to dense rows of a (vocab, dim) table.
type Embedding struct {
	name  string
	Table *autograd.Var
}

// NewEmbedding constructs a N(0, 0.02²)-initialized embedding table.
func NewEmbedding(name string, rng *xrand.RNG, vocab, dim int) *Embedding {
	return &Embedding{
		name:  name,
		Table: autograd.NewParam(tensor.Randn(rng, 0.02, vocab, dim)),
	}
}

// Forward gathers the rows for ids.
func (e *Embedding) Forward(t *autograd.Tape, ids []int) *autograd.Var {
	return t.Lookup(e.Table, ids)
}

// Params implements Module.
func (e *Embedding) Params() []Param {
	return []Param{{Name: e.name + ".table", Var: e.Table}}
}

// LayerNorm normalizes rows and applies learned gain/bias.
type LayerNorm struct {
	name string
	Gain *autograd.Var
	Bias *autograd.Var
	Eps  float64
}

// NewLayerNorm constructs a layer norm over width-dim rows.
func NewLayerNorm(name string, dim int) *LayerNorm {
	return &LayerNorm{
		name: name,
		Gain: autograd.NewParam(tensor.Full(1, dim)),
		Bias: autograd.NewParam(tensor.New(dim)),
		Eps:  1e-5,
	}
}

// Forward normalizes x (batch, dim).
func (l *LayerNorm) Forward(t *autograd.Tape, x *autograd.Var) *autograd.Var {
	return t.LayerNorm(x, l.Gain, l.Bias, l.Eps)
}

// Params implements Module.
func (l *LayerNorm) Params() []Param {
	return []Param{
		{Name: l.name + ".gain", Var: l.Gain},
		{Name: l.name + ".bias", Var: l.Bias},
	}
}

// ResidualBlock is Linear→ReLU→Linear with a skip connection; the building
// block of the deep "ResNet-152" analogue.
type ResidualBlock struct {
	name string
	fc1  *Linear
	fc2  *Linear
	ln   *LayerNorm
}

// NewResidualBlock constructs a width-preserving residual block.
func NewResidualBlock(name string, rng *xrand.RNG, dim, hidden int) *ResidualBlock {
	return &ResidualBlock{
		name: name,
		fc1:  NewLinear(name+".fc1", rng, dim, hidden),
		fc2:  NewLinear(name+".fc2", rng, hidden, dim),
		ln:   NewLayerNorm(name+".ln", dim),
	}
}

// Forward applies the block to x (batch, dim).
func (r *ResidualBlock) Forward(t *autograd.Tape, x *autograd.Var) *autograd.Var {
	h := r.fc2.Forward(t, t.Relu(r.fc1.Forward(t, x)))
	return r.ln.Forward(t, t.Add(x, h))
}

// Params implements Module.
func (r *ResidualBlock) Params() []Param {
	var out []Param
	out = append(out, r.fc1.Params()...)
	out = append(out, r.fc2.Params()...)
	out = append(out, r.ln.Params()...)
	return out
}

// SelfAttention is a single-head scaled dot-product self-attention layer
// operating on one sequence at a time: x is (seqLen, dim).
type SelfAttention struct {
	name string
	wq   *Linear
	wk   *Linear
	wv   *Linear
	wo   *Linear
	dim  int
}

// NewSelfAttention constructs an attention layer of the given width.
func NewSelfAttention(name string, rng *xrand.RNG, dim int) *SelfAttention {
	return &SelfAttention{
		name: name,
		wq:   NewLinear(name+".wq", rng, dim, dim),
		wk:   NewLinear(name+".wk", rng, dim, dim),
		wv:   NewLinear(name+".wv", rng, dim, dim),
		wo:   NewLinear(name+".wo", rng, dim, dim),
		dim:  dim,
	}
}

// Forward applies attention to a (seqLen, dim) sequence.
func (a *SelfAttention) Forward(t *autograd.Tape, x *autograd.Var) *autograd.Var {
	q := a.wq.Forward(t, x)
	k := a.wk.Forward(t, x)
	v := a.wv.Forward(t, x)
	// scores = QKᵀ / sqrt(dim): (seq, seq)
	scores := t.Scale(t.MatMul(q, t.TransposeVar(k)), 1/math.Sqrt(float64(a.dim)))
	attn := t.SoftmaxRows(scores)
	return a.wo.Forward(t, t.MatMul(attn, v))
}

// Params implements Module.
func (a *SelfAttention) Params() []Param {
	var out []Param
	out = append(out, a.wq.Params()...)
	out = append(out, a.wk.Params()...)
	out = append(out, a.wv.Params()...)
	out = append(out, a.wo.Params()...)
	return out
}

// TransformerBlock is attention + feed-forward with layer norms and skips.
type TransformerBlock struct {
	name string
	attn *SelfAttention
	ln1  *LayerNorm
	ff1  *Linear
	ff2  *Linear
	ln2  *LayerNorm
}

// NewTransformerBlock constructs a block of the given width and FF hidden
// size.
func NewTransformerBlock(name string, rng *xrand.RNG, dim, hidden int) *TransformerBlock {
	return &TransformerBlock{
		name: name,
		attn: NewSelfAttention(name+".attn", rng, dim),
		ln1:  NewLayerNorm(name+".ln1", dim),
		ff1:  NewLinear(name+".ff1", rng, dim, hidden),
		ff2:  NewLinear(name+".ff2", rng, hidden, dim),
		ln2:  NewLayerNorm(name+".ln2", dim),
	}
}

// Forward applies the block to a (seqLen, dim) sequence.
func (b *TransformerBlock) Forward(t *autograd.Tape, x *autograd.Var) *autograd.Var {
	h := b.ln1.Forward(t, t.Add(x, b.attn.Forward(t, x)))
	ff := b.ff2.Forward(t, t.Gelu(b.ff1.Forward(t, h)))
	return b.ln2.Forward(t, t.Add(h, ff))
}

// Params implements Module.
func (b *TransformerBlock) Params() []Param {
	var out []Param
	out = append(out, b.attn.Params()...)
	out = append(out, b.ln1.Params()...)
	out = append(out, b.ff1.Params()...)
	out = append(out, b.ff2.Params()...)
	out = append(out, b.ln2.Params()...)
	return out
}

// RNNCell is a vanilla tanh recurrent cell: h' = tanh(xWx + hWh + b).
type RNNCell struct {
	name string
	wx   *autograd.Var
	wh   *autograd.Var
	b    *autograd.Var
}

// NewRNNCell constructs a cell mapping in-dim inputs to hidden-dim state.
func NewRNNCell(name string, rng *xrand.RNG, in, hidden int) *RNNCell {
	return &RNNCell{
		name: name,
		wx:   autograd.NewParam(tensor.Transpose(tensor.XavierUniform(rng, in, hidden))),
		wh:   autograd.NewParam(tensor.Transpose(tensor.XavierUniform(rng, hidden, hidden))),
		b:    autograd.NewParam(tensor.New(hidden)),
	}
}

// Step advances the cell: x is (batch, in), h is (batch, hidden).
func (c *RNNCell) Step(t *autograd.Tape, x, h *autograd.Var) *autograd.Var {
	return t.Tanh(t.AddBias(t.Add(t.MatMul(x, c.wx), t.MatMul(h, c.wh)), c.b))
}

// Params implements Module.
func (c *RNNCell) Params() []Param {
	return []Param{
		{Name: c.name + ".wx", Var: c.wx},
		{Name: c.name + ".wh", Var: c.wh},
		{Name: c.name + ".b", Var: c.b},
	}
}

// Conv1DLayer holds a bank of 1-D kernels applied to row signals.
type Conv1DLayer struct {
	name    string
	Kernels *autograd.Var
}

// NewConv1DLayer constructs numKernels kernels of length klen.
func NewConv1DLayer(name string, rng *xrand.RNG, numKernels, klen int) *Conv1DLayer {
	std := 1 / math.Sqrt(float64(klen))
	return &Conv1DLayer{
		name:    name,
		Kernels: autograd.NewParam(tensor.Randn(rng, std, numKernels, klen)),
	}
}

// Forward convolves input (batch, inLen) with the kernel bank.
func (c *Conv1DLayer) Forward(t *autograd.Tape, x *autograd.Var) *autograd.Var {
	return t.Conv1D(x, c.Kernels)
}

// Params implements Module.
func (c *Conv1DLayer) Params() []Param {
	return []Param{{Name: c.name + ".kernels", Var: c.Kernels}}
}

// Accuracy returns the fraction of rows of logits whose argmax matches the
// label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	if logits.Dim(0) != len(labels) {
		panic(fmt.Sprintf("nn: Accuracy %d rows vs %d labels", logits.Dim(0), len(labels)))
	}
	pred := tensor.ArgmaxRows(logits)
	correct := 0
	for i, p := range pred {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}
