package nn

import (
	"strings"
	"testing"

	"flor.dev/flor/internal/autograd"
	"flor.dev/flor/internal/tensor"
	"flor.dev/flor/internal/xrand"
)

func TestLinearForwardShape(t *testing.T) {
	l := NewLinear("fc", xrand.New(1), 5, 3)
	x := autograd.NewConst(tensor.Full(1, 4, 5))
	out := l.Forward(autograd.NewTape(), x)
	if out.Value.Dim(0) != 4 || out.Value.Dim(1) != 3 {
		t.Fatalf("Linear output shape %v, want [4 3]", out.Value.Shape())
	}
}

func TestParamNamesUnique(t *testing.T) {
	models := map[string]Module{
		"convnet":   NewConvNet(xrand.New(1), 32, 4, 5, 3, 3, 10),
		"resmlp":    NewResidualMLP(xrand.New(2), 16, 32, 32, 12, 10),
		"xform":     NewTransformer(xrand.New(3), 50, 8, 16, 32, 2, 4),
		"speech":    NewConvSpeech(xrand.New(4), 40, 2, 5, 3, 16, 8),
		"rnnatt":    NewRNNAttention(xrand.New(5), 30, 8, 12),
		"resblock":  NewResidualBlock("rb", xrand.New(6), 8, 16),
		"attention": NewSelfAttention("sa", xrand.New(7), 8),
	}
	for name, m := range models {
		seen := map[string]bool{}
		for _, p := range m.Params() {
			if seen[p.Name] {
				t.Fatalf("%s: duplicate parameter name %q", name, p.Name)
			}
			seen[p.Name] = true
			if p.Var == nil || p.Var.Value == nil {
				t.Fatalf("%s: parameter %q has nil value", name, p.Name)
			}
		}
	}
}

func TestParamOrderDeterministic(t *testing.T) {
	a := NewResidualMLP(xrand.New(2), 16, 32, 32, 12, 10)
	b := NewResidualMLP(xrand.New(2), 16, 32, 32, 12, 10)
	pa, pb := a.Params(), b.Params()
	if len(pa) != len(pb) {
		t.Fatal("param count differs across identical constructions")
	}
	for i := range pa {
		if pa[i].Name != pb[i].Name {
			t.Fatalf("param order differs at %d: %q vs %q", i, pa[i].Name, pb[i].Name)
		}
		if !tensor.Equal(pa[i].Var.Value, pb[i].Var.Value) {
			t.Fatalf("param %q differs across identical seeds", pa[i].Name)
		}
	}
}

func TestConvNetForward(t *testing.T) {
	m := NewConvNet(xrand.New(1), 32, 4, 5, 3, 3, 10)
	x := autograd.NewConst(tensor.Randn(xrand.New(2), 1, 6, 32))
	out := m.Forward(autograd.NewTape(), x)
	if out.Value.Dim(0) != 6 || out.Value.Dim(1) != 10 {
		t.Fatalf("ConvNet output %v, want [6 10]", out.Value.Shape())
	}
}

func TestResidualMLPForward(t *testing.T) {
	m := NewResidualMLP(xrand.New(1), 16, 24, 32, 8, 5)
	x := autograd.NewConst(tensor.Randn(xrand.New(2), 1, 3, 16))
	out := m.Forward(autograd.NewTape(), x)
	if out.Value.Dim(0) != 3 || out.Value.Dim(1) != 5 {
		t.Fatalf("ResidualMLP output %v, want [3 5]", out.Value.Shape())
	}
}

func TestTransformerClassify(t *testing.T) {
	m := NewTransformer(xrand.New(1), 50, 8, 16, 32, 2, 4)
	tokens := []int{1, 5, 9, 2, 0, 7, 3, 4}
	out := m.ClassifyLogits(autograd.NewTape(), tokens)
	if out.Value.Dim(0) != 1 || out.Value.Dim(1) != 4 {
		t.Fatalf("ClassifyLogits shape %v, want [1 4]", out.Value.Shape())
	}
}

func TestTransformerLM(t *testing.T) {
	m := NewTransformer(xrand.New(1), 50, 8, 16, 32, 2, 50)
	tokens := []int{1, 5, 9, 2, 0, 7, 3, 4}
	out := m.LMLogits(autograd.NewTape(), tokens)
	if out.Value.Dim(0) != 8 || out.Value.Dim(1) != 50 {
		t.Fatalf("LMLogits shape %v, want [8 50]", out.Value.Shape())
	}
}

func TestConvSpeechForward(t *testing.T) {
	m := NewConvSpeech(xrand.New(1), 40, 2, 5, 3, 16, 8)
	x := autograd.NewConst(tensor.Randn(xrand.New(2), 1, 4, 40))
	out := m.Forward(autograd.NewTape(), x)
	if out.Value.Dim(0) != 4 || out.Value.Dim(1) != 8 {
		t.Fatalf("ConvSpeech output %v, want [4 8]", out.Value.Shape())
	}
}

func TestRNNAttentionLogits(t *testing.T) {
	m := NewRNNAttention(xrand.New(1), 30, 8, 12)
	src := []int{1, 2, 3, 4, 5}
	tgt := []int{6, 7, 8}
	out := m.Logits(autograd.NewTape(), src, tgt)
	if out.Value.Dim(0) != 3 || out.Value.Dim(1) != 30 {
		t.Fatalf("RNNAttention logits %v, want [3 30]", out.Value.Shape())
	}
}

func TestFreezeBackbone(t *testing.T) {
	m := NewTransformer(xrand.New(1), 50, 8, 16, 32, 2, 4)
	total := len(m.Params())
	frozen := m.FreezeBackbone()
	if frozen == 0 || frozen >= total {
		t.Fatalf("froze %d of %d params; expected a strict subset", frozen, total)
	}
	for _, p := range m.Params() {
		isBackbone := strings.HasPrefix(p.Name, "backbone.")
		if isBackbone && p.Var.RequiresGrad() {
			t.Fatalf("backbone param %q still trainable", p.Name)
		}
		if !isBackbone && !p.Var.RequiresGrad() {
			t.Fatalf("head param %q was frozen", p.Name)
		}
	}
	trainable := TrainableParams(m)
	if len(trainable) != total-frozen {
		t.Fatalf("TrainableParams = %d, want %d", len(trainable), total-frozen)
	}
}

func TestFrozenBackboneExcludedFromGradients(t *testing.T) {
	m := NewTransformer(xrand.New(1), 50, 8, 16, 32, 2, 4)
	m.FreezeBackbone()
	tape := autograd.NewTape()
	loss := tape.SoftmaxCrossEntropy(m.ClassifyLogits(tape, []int{1, 2, 3, 4, 5, 6, 7, 0}), []int{2})
	tape.Backward(loss)
	for _, p := range m.Params() {
		if strings.HasPrefix(p.Name, "backbone.") && p.Var.Grad != nil && p.Var.Grad.Norm() != 0 {
			t.Fatalf("frozen param %q received gradient", p.Name)
		}
	}
	headGrads := 0
	for _, p := range TrainableParams(m) {
		if p.Var.Grad != nil && p.Var.Grad.Norm() > 0 {
			headGrads++
		}
	}
	if headGrads == 0 {
		t.Fatal("no head parameter received a gradient")
	}
}

func TestCloneLoadStateRoundTrip(t *testing.T) {
	m := NewResidualMLP(xrand.New(1), 8, 12, 16, 3, 4)
	snap := CloneState(m)
	// Perturb, then restore.
	for _, p := range m.Params() {
		p.Var.Value.Fill(42)
	}
	if err := LoadState(m, snap); err != nil {
		t.Fatal(err)
	}
	m2 := NewResidualMLP(xrand.New(1), 8, 12, 16, 3, 4)
	if !StatesEqual(m, m2) {
		t.Fatal("restored state differs from same-seed reconstruction")
	}
}

func TestLoadStateMissingParam(t *testing.T) {
	m := NewLinear("fc", xrand.New(1), 2, 2)
	err := LoadState(m, map[string]*tensor.Tensor{})
	if err == nil {
		t.Fatal("LoadState with empty map should fail")
	}
}

func TestLoadStateShapeMismatch(t *testing.T) {
	m := NewLinear("fc", xrand.New(1), 2, 2)
	err := LoadState(m, map[string]*tensor.Tensor{
		"fc.w": tensor.New(3, 3),
		"fc.b": tensor.New(2),
	})
	if err == nil {
		t.Fatal("LoadState with wrong shape should fail")
	}
}

func TestGradAndWeightNorms(t *testing.T) {
	m := NewLinear("fc", xrand.New(1), 4, 2)
	if GradNorm(m) != 0 {
		t.Fatal("GradNorm before backward should be 0")
	}
	if WeightNorm(m) <= 0 {
		t.Fatal("WeightNorm should be positive after init")
	}
	tape := autograd.NewTape()
	x := autograd.NewConst(tensor.Full(1, 3, 4))
	loss := tape.SoftmaxCrossEntropy(m.Forward(tape, x), []int{0, 1, 0})
	tape.Backward(loss)
	if GradNorm(m) <= 0 {
		t.Fatal("GradNorm after backward should be positive")
	}
	ZeroGrads(m)
	if GradNorm(m) != 0 {
		t.Fatal("GradNorm after ZeroGrads should be 0")
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float64{
		5, 1, 1,
		1, 5, 1,
		1, 1, 5,
		5, 1, 1,
	}, 4, 3)
	if got := Accuracy(logits, []int{0, 1, 2, 0}); got != 1 {
		t.Fatalf("Accuracy = %g, want 1", got)
	}
	if got := Accuracy(logits, []int{1, 1, 2, 0}); got != 0.75 {
		t.Fatalf("Accuracy = %g, want 0.75", got)
	}
}

func TestNumParamsCounts(t *testing.T) {
	m := NewLinear("fc", xrand.New(1), 4, 3)
	if got := NumParams(m); got != 4*3+3 {
		t.Fatalf("NumParams = %d, want 15", got)
	}
}

// TestTrainingReducesLoss is an end-to-end check that the substrate can
// actually learn: a small MLP should fit a linearly separable problem.
func TestTrainingReducesLoss(t *testing.T) {
	rng := xrand.New(7)
	m := NewResidualMLP(rng, 4, 8, 8, 2, 2)
	x := tensor.New(20, 4)
	labels := make([]int, 20)
	dataRng := xrand.New(8)
	for i := 0; i < 20; i++ {
		cls := i % 2
		labels[i] = cls
		for j := 0; j < 4; j++ {
			x.Set(dataRng.NormFloat64()+float64(cls*3), i, j)
		}
	}
	input := autograd.NewConst(x)
	var first, last float64
	for step := 0; step < 60; step++ {
		tape := autograd.NewTape()
		ZeroGrads(m)
		loss := tape.SoftmaxCrossEntropy(m.Forward(tape, input), labels)
		tape.Backward(loss)
		if step == 0 {
			first = loss.Value.Item()
		}
		last = loss.Value.Item()
		for _, p := range m.Params() {
			if p.Var.Grad != nil {
				tensor.AxpyInPlace(p.Var.Value, -0.1, p.Var.Grad)
			}
		}
	}
	if last >= first/2 {
		t.Fatalf("training did not reduce loss: first=%g last=%g", first, last)
	}
}
