package obs

// Background-task tracing. Long-running maintenance work — GC passes with
// their mark/sweep/rewrite phases, spool passes — runs outside any query, so
// query traces never see it. BeginTask gives such work its own trace and a
// place in a small package-level ring that flord serves at /v1/debug/tasks,
// answering "what has the daemon been doing to itself?" without logs.
//
// This is a rare path (a handful of task starts per minute at most), so
// unlike the metric hot paths it resolves handles lazily and takes a lock;
// the ring is bounded so an idle daemon holds a fixed amount of history.

import (
	"sync"
	"time"
)

// taskHistory bounds the completed-task ring.
const taskHistory = 64

// TaskRecord is one background task as served at /v1/debug/tasks: identity,
// timing, and the task's phase spans.
type TaskRecord struct {
	Name        string `json:"name"`
	StartUnixNs int64  `json:"start_unix_ns"`
	DurNs       int64  `json:"dur_ns"`
	Done        bool   `json:"done"`
	Spans       []Span `json:"spans,omitempty"`
}

// ActiveTask is a background task in flight. Record phases on its Trace;
// call End exactly once when the task finishes.
type ActiveTask struct {
	name  string
	start time.Time
	tr    *Trace
	once  sync.Once
}

var (
	tasksMu        sync.Mutex
	tasksActive    []*ActiveTask
	tasksCompleted []TaskRecord // newest last, bounded by taskHistory
)

// BeginTask registers a background task and returns its handle. The task is
// visible in Tasks() immediately (Done=false) and moves to the completed
// ring on End.
func BeginTask(name string) *ActiveTask {
	t := &ActiveTask{name: name, start: time.Now(), tr: NewTrace()}
	tasksMu.Lock()
	tasksActive = append(tasksActive, t)
	tasksMu.Unlock()
	return t
}

// Trace returns the task's trace for phase spans (nil-safe: a nil task
// returns a nil trace, which no-ops).
func (t *ActiveTask) Trace() *Trace {
	if t == nil {
		return nil
	}
	return t.tr
}

// End completes the task: moves it from the active list to the completed
// ring and records the task-run metrics. Safe to call more than once; only
// the first call has effect.
func (t *ActiveTask) End() {
	if t == nil {
		return
	}
	t.once.Do(func() {
		dur := time.Since(t.start)
		rec := TaskRecord{
			Name:        t.name,
			StartUnixNs: t.start.UnixNano(),
			DurNs:       dur.Nanoseconds(),
			Done:        true,
			Spans:       t.tr.Spans(),
		}
		tasksMu.Lock()
		for i, a := range tasksActive {
			if a == t {
				tasksActive = append(tasksActive[:i], tasksActive[i+1:]...)
				break
			}
		}
		tasksCompleted = append(tasksCompleted, rec)
		if len(tasksCompleted) > taskHistory {
			tasksCompleted = tasksCompleted[len(tasksCompleted)-taskHistory:]
		}
		tasksMu.Unlock()
		C(MObsTaskRuns, L("task", t.name)).Inc()
		H(MObsTaskSeconds, L("task", t.name)).ObserveNs(dur.Nanoseconds())
	})
}

// Tasks snapshots the background-task history: tasks still in flight first
// (Done=false, DurNs = elapsed so far), then completed tasks newest-first.
func Tasks() []TaskRecord {
	now := time.Now()
	tasksMu.Lock()
	defer tasksMu.Unlock()
	out := make([]TaskRecord, 0, len(tasksActive)+len(tasksCompleted))
	for _, a := range tasksActive {
		out = append(out, TaskRecord{
			Name:        a.name,
			StartUnixNs: a.start.UnixNano(),
			DurNs:       now.Sub(a.start).Nanoseconds(),
			Spans:       a.tr.Spans(),
		})
	}
	for i := len(tasksCompleted) - 1; i >= 0; i-- {
		out = append(out, tasksCompleted[i])
	}
	return out
}

// resetTasksForTest clears the package task state (tests only).
func resetTasksForTest() {
	tasksMu.Lock()
	tasksActive, tasksCompleted = nil, nil
	tasksMu.Unlock()
}
