package obs

import (
	"strings"
	"testing"
	"time"
)

func testLogger(min Level) (*Logger, *strings.Builder) {
	var b strings.Builder
	l := NewLogger(&b, min)
	l.now = func() time.Time { return time.Date(2026, 8, 8, 10, 0, 0, 0, time.UTC) }
	return l, &b
}

func TestParseLevel(t *testing.T) {
	cases := map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "warn": LevelWarn,
		"warning": LevelWarn, "error": LevelError, "INFO": LevelInfo, "": LevelInfo,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel should reject unknown levels")
	}
}

func TestLoggerFormat(t *testing.T) {
	l, b := testLogger(LevelInfo)
	l.Info("run registered", "run", "demo", "slots", 4)
	want := `ts=2026-08-08T10:00:00Z level=info msg="run registered" run=demo slots=4` + "\n"
	if b.String() != want {
		t.Fatalf("got  %q\nwant %q", b.String(), want)
	}
}

func TestLoggerQuoting(t *testing.T) {
	l, b := testLogger(LevelDebug)
	l.Warn("x", "path", "/tmp/a b", "eq", "k=v", "empty", "", "plain", "ok")
	out := b.String()
	for _, want := range []string{`path="/tmp/a b"`, `eq="k=v"`, `empty=""`, `plain=ok`, "level=warn"} {
		if !strings.Contains(out, want) {
			t.Errorf("line missing %q: %s", want, out)
		}
	}
}

func TestLoggerLevelGate(t *testing.T) {
	l, b := testLogger(LevelWarn)
	l.Debug("nope")
	l.Info("nope")
	if b.Len() != 0 {
		t.Fatalf("below-threshold lines written: %q", b.String())
	}
	l.Error("yes", "code", 500)
	if !strings.Contains(b.String(), "level=error msg=yes code=500") {
		t.Fatalf("error line malformed: %q", b.String())
	}
	l.SetLevel(LevelDebug)
	if !l.Enabled(LevelDebug) {
		t.Fatal("SetLevel(debug) should enable debug")
	}
}

func TestLoggerNilAndOddKV(t *testing.T) {
	var nilLogger *Logger
	nilLogger.Info("ignored", "k", "v") // must not panic
	nilLogger.SetLevel(LevelDebug)
	if nilLogger.Enabled(LevelError) {
		t.Fatal("nil logger must report disabled")
	}
	l, b := testLogger(LevelInfo)
	l.Info("odd", "dangling")
	if !strings.Contains(b.String(), "dangling=MISSING") {
		t.Fatalf("odd trailing key mishandled: %q", b.String())
	}
}
