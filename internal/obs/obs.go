// Package obs is the repo's observability layer: a dependency-free metrics
// registry (counters, gauges, fixed-bucket histograms), a lightweight span
// tracer, and a leveled structured logger. Every other layer — store, sched,
// replay, serve — instruments itself through this package; flord exposes the
// registry as a Prometheus-text /metrics endpoint and per-replay traces as
// NDJSON (docs/OBSERVABILITY.md is the operator-facing catalog).
//
// # Cost model
//
// Instrumentation must be free when nobody is watching: the package-level
// registry defaults to *disabled*, in which state every handle getter (C, G,
// H) returns a typed nil and every method on a nil handle is a single
// predictable branch — no allocation, no atomics, no locks. Hot paths
// resolve handles once at construction time (a pool's counters in NewPool, a
// cache's in NewPayloadCache) and pay only an atomic add per event when the
// registry is live. Enable installs a live registry process-wide; the
// serve-throughput benchmark's obs-overhead entry keeps the disabled-path
// claim measured rather than asserted.
//
// # Names
//
// Metric names are closed-world: the getters panic on a name missing from
// the catalog (names.go), so the catalog, the docs, and the scrape cannot
// drift apart. The CI obs lane additionally rejects flor_* string literals
// outside this package — call sites must use the catalog constants.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric label pair.
type Label struct{ Key, Value string }

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing int64. The nil counter (disabled
// registry) no-ops.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n < 0 is ignored: counters only rise).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an int64 that can go up and down. The nil gauge no-ops.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by delta (negative deltas allowed).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DurationBuckets are the fixed histogram bucket upper bounds, in seconds:
// 100µs to 10s in a 1-2.5-5 ladder. One shared ladder keeps every latency
// histogram comparable and the scrape format stable; observations beyond the
// last bound land in the implicit +Inf bucket.
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// Exemplar is one sampled observation attached to a histogram bucket — the
// trace ID of a real query that landed there, so an operator can jump from a
// latency bucket straight to the span-level trace that explains it.
type Exemplar struct {
	TraceID string
	Value   float64
}

// Histogram is a fixed-bucket histogram of float64 observations (seconds, by
// convention — use ObserveNs for durations). The nil histogram no-ops.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
	// exemplars holds the most recent exemplar-carrying observation per
	// bucket (last write wins; nil entries for buckets never exemplified).
	exemplars []atomic.Pointer[Exemplar]
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.bucketOf(v)
}

// bucketOf records one observation and returns the bucket index it fell in.
func (h *Histogram) bucketOf(v float64) int {
	// Buckets are few and sorted; linear probe beats binary search at this
	// size and is branch-predictable for clustered latencies.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return i
		}
	}
}

// ObserveExemplar records one observation and attaches traceID as the
// landing bucket's exemplar (rendered OpenMetrics-style in the scrape), so
// each latency bucket names a recent trace that explains it. An empty
// traceID degrades to Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if h == nil {
		return
	}
	i := h.bucketOf(v)
	if traceID != "" {
		h.exemplars[i].Store(&Exemplar{TraceID: traceID, Value: v})
	}
}

// ObserveNsExemplar is ObserveExemplar for a duration in nanoseconds.
func (h *Histogram) ObserveNsExemplar(ns int64, traceID string) {
	if h == nil {
		return
	}
	h.ObserveExemplar(float64(ns)/1e9, traceID)
}

// ObserveNs records a duration given in nanoseconds.
func (h *Histogram) ObserveNs(ns int64) {
	if h == nil {
		return
	}
	h.Observe(float64(ns) / 1e9)
}

// Count returns the total number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// BucketCounts returns the per-bucket (non-cumulative) counts; the last
// entry is the +Inf bucket. Nil for a nil histogram.
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// metric is one registered (name, labels) instance.
type metric struct {
	labelKey string // canonical `k="v",...` serialization, "" when unlabeled
	c        *Counter
	g        *Gauge
	h        *Histogram
}

// family groups a catalog name's label variants.
type family struct {
	def     Def
	order   []string // label keys in registration order (scrape stability)
	metrics map[string]*metric
}

// Registry holds live metrics. The zero value is not usable — construct with
// NewRegistry (or Enable for the package default). A nil *Registry is the
// disabled state: its getters return nil handles.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty live registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// labelKey canonicalizes labels (sorted by key) for identity and scraping.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString("=\"")
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteString("\"")
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// lookup finds or creates the (name, labels) metric, validating the name
// against the catalog and the kind against the catalog row.
func (r *Registry) lookup(name string, kind Kind, labels []Label) *metric {
	def, ok := Lookup(name)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q is not in the catalog (internal/obs/names.go)", name))
	}
	if def.Kind != kind {
		panic(fmt.Sprintf("obs: metric %q is a %s, requested as %s", name, def.Kind, kind))
	}
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{def: def, metrics: map[string]*metric{}}
		r.families[name] = f
	}
	m := f.metrics[key]
	if m == nil {
		m = &metric{labelKey: key}
		switch kind {
		case KindCounter:
			m.c = &Counter{}
		case KindGauge:
			m.g = &Gauge{}
		case KindHistogram:
			m.h = &Histogram{
				bounds:    DurationBuckets,
				counts:    make([]atomic.Int64, len(DurationBuckets)+1),
				exemplars: make([]atomic.Pointer[Exemplar], len(DurationBuckets)+1),
			}
		}
		f.metrics[key] = m
		f.order = append(f.order, key)
	}
	return m
}

// Counter returns the counter for (name, labels), creating it on first use.
// Returns nil (a no-op handle) on a nil registry; panics on a name missing
// from the catalog.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, KindCounter, labels).c
}

// Gauge returns the gauge for (name, labels); nil-registry semantics as
// Counter.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, KindGauge, labels).g
}

// Histogram returns the histogram for (name, labels); nil-registry semantics
// as Counter.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, KindHistogram, labels).h
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): families in catalog order, label variants in
// registration order, histograms as cumulative _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "# obs: registry disabled\n")
		return err
	}
	// Snapshot the family table, then render without the registry lock:
	// atomic reads tolerate concurrent updates, and a slow scrape reader
	// must not stall registration.
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, d := range Catalog {
		if f, ok := r.families[d.Name]; ok {
			fams = append(fams, f)
		}
	}
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.def.Name, f.def.Help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.def.Name, f.def.Kind)
		for _, key := range f.order {
			m := f.metrics[key]
			switch f.def.Kind {
			case KindCounter:
				writeSample(&b, f.def.Name, "", key, "", strconv.FormatInt(m.c.Value(), 10))
			case KindGauge:
				writeSample(&b, f.def.Name, "", key, "", strconv.FormatInt(m.g.Value(), 10))
			case KindHistogram:
				var cum int64
				counts := m.h.BucketCounts()
				for i, bound := range m.h.bounds {
					cum += counts[i]
					writeBucket(&b, f.def.Name, key,
						`le="`+formatFloat(bound)+`"`, strconv.FormatInt(cum, 10), m.h.exemplar(i))
				}
				writeBucket(&b, f.def.Name, key, `le="+Inf"`,
					strconv.FormatInt(m.h.Count(), 10), m.h.exemplar(len(m.h.bounds)))
				writeSample(&b, f.def.Name, "_sum", key, "", formatFloat(m.h.Sum()))
				writeSample(&b, f.def.Name, "_count", key, "", strconv.FormatInt(m.h.Count(), 10))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// exemplar returns bucket i's exemplar, nil if none was ever attached.
func (h *Histogram) exemplar(i int) *Exemplar {
	if h == nil || i >= len(h.exemplars) {
		return nil
	}
	return h.exemplars[i].Load()
}

// writeBucket emits one cumulative `_bucket` line, appending the bucket's
// exemplar as an OpenMetrics-style ` # {trace_id="..."} value` suffix when
// one exists. Plain-text Prometheus parsers that stop at `#` still read the
// sample correctly; OpenMetrics-aware ones pick up the trace link.
func writeBucket(b *strings.Builder, name, labels, le, value string, ex *Exemplar) {
	b.WriteString(name)
	b.WriteString("_bucket{")
	b.WriteString(labels)
	if labels != "" {
		b.WriteByte(',')
	}
	b.WriteString(le)
	b.WriteString("} ")
	b.WriteString(value)
	if ex != nil {
		b.WriteString(` # {trace_id="`)
		b.WriteString(escapeLabelValue(ex.TraceID))
		b.WriteString(`"} `)
		b.WriteString(formatFloat(ex.Value))
	}
	b.WriteByte('\n')
}

// writeSample emits one `name_suffix{labels,extra} value` line.
func writeSample(b *strings.Builder, name, suffix, labels, extra, value string) {
	b.WriteString(name)
	b.WriteString(suffix)
	if labels != "" || extra != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		if labels != "" && extra != "" {
			b.WriteByte(',')
		}
		b.WriteString(extra)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// def is the package-level registry: nil while disabled (the default).
var def atomic.Pointer[Registry]

// Enable installs a live package-level registry (keeping the current one if
// already enabled) and returns it. Call it once at daemon startup, before
// constructing the components to be observed: handles are resolved at
// construction time, so components built while disabled stay dark.
func Enable() *Registry {
	for {
		if r := def.Load(); r != nil {
			return r
		}
		if def.CompareAndSwap(nil, NewRegistry()) {
			return def.Load()
		}
	}
}

// Disable removes the package-level registry: subsequently resolved handles
// are nil and no-op. Existing handles keep counting into the orphaned
// registry, which is no longer scrapable.
func Disable() { def.Store(nil) }

// Default returns the package-level registry, nil while disabled.
func Default() *Registry { return def.Load() }

// C resolves a counter from the package-level registry (nil when disabled).
func C(name string, labels ...Label) *Counter { return Default().Counter(name, labels...) }

// G resolves a gauge from the package-level registry (nil when disabled).
func G(name string, labels ...Label) *Gauge { return Default().Gauge(name, labels...) }

// H resolves a histogram from the package-level registry (nil when
// disabled).
func H(name string, labels ...Label) *Histogram { return Default().Histogram(name, labels...) }
