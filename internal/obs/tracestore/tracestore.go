// Package tracestore is the durable home for query traces. The serving
// layer's in-memory trace ring answers "what just happened"; this package
// answers "what happened before the restart" — the hindsight-logging promise
// applied to the system's own queries. Traces land as NDJSON entries in
// numbered segment files under a spill directory, governed by a head-sampling
// policy with an always-keep-slow bypass and size/age retention that prunes
// whole segments. A separate slow-query log keeps full span detail for every
// query over the caller's latency threshold, regardless of sampling.
//
// Durability model: appends go to the active segment and are made durable on
// segment roll and Close. A crash can tear the active segment's tail line;
// Open tolerates that by skipping unparsable lines and always starting a
// fresh segment, so a torn tail costs at most the last partially-written
// trace, never the store.
package tracestore

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"flor.dev/flor/internal/obs"
)

// Options configures a Store. Zero values get defaults from fill.
type Options struct {
	// Dir is the spill directory (created if missing). Required.
	Dir string
	// MaxSegmentBytes rolls the active segment when it would exceed this
	// size (default 1 MiB).
	MaxSegmentBytes int64
	// MaxTotalBytes prunes oldest segments when the store exceeds this
	// size (default 16 MiB).
	MaxTotalBytes int64
	// MaxAge prunes segments whose newest entry is older than this
	// (0 = no age pruning).
	MaxAge time.Duration
	// SampleN head-samples non-slow traces: 1-in-N is kept (<= 1 keeps
	// all). Slow traces always bypass sampling.
	SampleN int
}

func (o Options) fill() Options {
	if o.MaxSegmentBytes <= 0 {
		o.MaxSegmentBytes = 1 << 20
	}
	if o.MaxTotalBytes <= 0 {
		o.MaxTotalBytes = 16 << 20
	}
	if o.SampleN < 1 {
		o.SampleN = 1
	}
	return o
}

// Entry is one persisted trace: identity, timing, and full span detail.
type Entry struct {
	TraceID     string     `json:"trace_id"`
	Run         string     `json:"run"`
	Kind        string     `json:"kind"`
	StartUnixNs int64      `json:"start_unix_ns"`
	DurNs       int64      `json:"dur_ns"`
	Slow        bool       `json:"slow,omitempty"`
	Spans       []obs.Span `json:"spans"`
}

// segment is one on-disk NDJSON file and the index keys it contributed.
type segment struct {
	path   string
	id     int
	size   int64
	newest int64 // max StartUnixNs seen, for age retention
	keys   []string
}

// Store is a durable, size/age-bounded trace store. Safe for concurrent use.
type Store struct {
	opts Options

	mu      sync.Mutex
	segs    []*segment // oldest first; the last is the active segment
	w       *os.File   // active segment file
	index   map[string]Entry
	lastSeq map[string]int
	total   int64
	nseen   int // head-sampling counter
	closed  bool

	slowPath string
	slowSize int64

	mAppends *obs.Counter
	mSampled *obs.Counter
	mPruned  *obs.Counter
	gBytes   *obs.Gauge
}

func key(run, traceID string) string { return run + "\x00" + traceID }

// Open loads the segments under opts.Dir (tolerating a torn tail line from a
// crashed writer), starts a fresh active segment, and returns the store.
func Open(opts Options) (*Store, error) {
	opts = opts.fill()
	if opts.Dir == "" {
		return nil, fmt.Errorf("tracestore: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	s := &Store{
		opts:     opts,
		index:    map[string]Entry{},
		lastSeq:  map[string]int{},
		slowPath: filepath.Join(opts.Dir, "slow.ndjson"),
		mAppends: obs.C(obs.MObsTraceStoreAppends),
		mSampled: obs.C(obs.MObsTraceStoreSampledOut),
		mPruned:  obs.C(obs.MObsTraceStorePruned),
		gBytes:   obs.G(obs.MObsTraceStoreBytes),
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	if err := s.roll(); err != nil {
		return nil, err
	}
	if fi, err := os.Stat(s.slowPath); err == nil {
		s.slowSize = fi.Size()
	}
	s.prune(time.Now())
	s.gBytes.Set(s.total)
	return s, nil
}

// load scans existing traces-*.ndjson segments into the index.
func (s *Store) load() error {
	names, err := filepath.Glob(filepath.Join(s.opts.Dir, "traces-*.ndjson"))
	if err != nil {
		return fmt.Errorf("tracestore: %w", err)
	}
	sort.Strings(names)
	for _, path := range names {
		base := filepath.Base(path)
		idStr := strings.TrimSuffix(strings.TrimPrefix(base, "traces-"), ".ndjson")
		id, err := strconv.Atoi(idStr)
		if err != nil {
			continue // not one of ours
		}
		seg := &segment{path: path, id: id}
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("tracestore: %w", err)
		}
		seg.size = int64(len(data))
		for _, line := range bytes.Split(data, []byte{'\n'}) {
			if len(bytes.TrimSpace(line)) == 0 {
				continue
			}
			var e Entry
			if json.Unmarshal(line, &e) != nil {
				continue // torn tail from a crashed writer
			}
			s.absorb(seg, e)
		}
		s.segs = append(s.segs, seg)
		s.total += seg.size
	}
	return nil
}

// absorb indexes one loaded or appended entry under seg.
func (s *Store) absorb(seg *segment, e Entry) {
	k := key(e.Run, e.TraceID)
	s.index[k] = e
	seg.keys = append(seg.keys, k)
	if e.StartUnixNs > seg.newest {
		seg.newest = e.StartUnixNs
	}
	if n, ok := parseSeq(e.TraceID); ok && n > s.lastSeq[e.Run] {
		s.lastSeq[e.Run] = n
	}
}

// parseSeq extracts the numeric sequence from a "t%06d" trace ID.
func parseSeq(traceID string) (int, bool) {
	if !strings.HasPrefix(traceID, "t") {
		return 0, false
	}
	n, err := strconv.Atoi(traceID[1:])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// roll syncs and closes the active segment (if any) and opens the next one.
// Caller holds s.mu or is Open.
func (s *Store) roll() error {
	if s.w != nil {
		s.w.Sync()
		s.w.Close()
		s.w = nil
	}
	next := 0
	for _, seg := range s.segs {
		if seg.id >= next {
			next = seg.id + 1
		}
	}
	path := filepath.Join(s.opts.Dir, fmt.Sprintf("traces-%08d.ndjson", next))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("tracestore: %w", err)
	}
	s.w = f
	s.segs = append(s.segs, &segment{path: path, id: next})
	return nil
}

// prune drops oldest non-active segments while the store exceeds its size
// bound, then drops segments older than MaxAge. Caller holds s.mu or is
// Open.
func (s *Store) prune(now time.Time) {
	drop := func(i int) {
		seg := s.segs[i]
		os.Remove(seg.path)
		for _, k := range seg.keys {
			delete(s.index, k)
		}
		s.total -= seg.size
		s.segs = append(s.segs[:i], s.segs[i+1:]...)
		s.mPruned.Inc()
	}
	for s.total > s.opts.MaxTotalBytes && len(s.segs) > 1 {
		drop(0)
	}
	if s.opts.MaxAge > 0 {
		cutoff := now.Add(-s.opts.MaxAge).UnixNano()
		for len(s.segs) > 1 && s.segs[0].newest > 0 && s.segs[0].newest < cutoff {
			drop(0)
		}
	}
}

// Append persists one trace, subject to head sampling (slow traces always
// persist). It reports whether the entry was kept. Slow entries are also
// written to the slow-query log.
func (s *Store) Append(e Entry) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, fmt.Errorf("tracestore: closed")
	}
	if !e.Slow && s.opts.SampleN > 1 {
		s.nseen++
		if (s.nseen-1)%s.opts.SampleN != 0 {
			s.mSampled.Inc()
			return false, nil
		}
	}
	line, err := json.Marshal(e)
	if err != nil {
		return false, fmt.Errorf("tracestore: %w", err)
	}
	line = append(line, '\n')
	active := s.segs[len(s.segs)-1]
	if active.size > 0 && active.size+int64(len(line)) > s.opts.MaxSegmentBytes {
		if err := s.roll(); err != nil {
			return false, err
		}
		s.prune(time.Now())
		active = s.segs[len(s.segs)-1]
	}
	if _, err := s.w.Write(line); err != nil {
		return false, fmt.Errorf("tracestore: %w", err)
	}
	active.size += int64(len(line))
	s.total += int64(len(line))
	s.absorb(active, e)
	s.mAppends.Inc()
	s.gBytes.Set(s.total)
	if e.Slow {
		s.appendSlow(line)
	}
	return true, nil
}

// appendSlow writes one line to the slow-query log, rotating it to
// slow.ndjson.1 when it exceeds the segment size bound. Caller holds s.mu.
func (s *Store) appendSlow(line []byte) {
	if s.slowSize+int64(len(line)) > s.opts.MaxSegmentBytes {
		os.Rename(s.slowPath, s.slowPath+".1")
		s.slowSize = 0
	}
	f, err := os.OpenFile(s.slowPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return
	}
	if n, err := f.Write(line); err == nil {
		s.slowSize += int64(n)
	}
	f.Close()
}

// Get returns the persisted trace for (run, traceID).
func (s *Store) Get(run, traceID string) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.index[key(run, traceID)]
	return e, ok
}

// LastSeq returns the highest numeric trace-ID sequence persisted for run
// (0 if none) — the serving layer seeds its ID counter from this so trace
// IDs stay unique across restarts.
func (s *Store) LastSeq(run string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastSeq[run]
}

// Slow returns up to limit entries from the slow-query log, newest first.
func (s *Store) Slow(limit int) []Entry {
	s.mu.Lock()
	paths := []string{s.slowPath + ".1", s.slowPath}
	s.mu.Unlock()
	var out []Entry
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			continue
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
		for sc.Scan() {
			var e Entry
			if json.Unmarshal(sc.Bytes(), &e) == nil {
				out = append(out, e)
			}
		}
		f.Close()
	}
	// Files were read oldest-first; reverse for newest-first.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Bytes returns the store's current on-disk segment footprint.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Close makes the active segment durable and closes the store.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.w != nil {
		s.w.Sync()
		err := s.w.Close()
		s.w = nil
		return err
	}
	return nil
}
