package tracestore

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"flor.dev/flor/internal/obs"
)

func entry(run string, seq int, durNs int64, slow bool) Entry {
	return Entry{
		TraceID:     fmt.Sprintf("t%06d", seq),
		Run:         run,
		Kind:        "replay",
		StartUnixNs: int64(seq) * 1e9,
		DurNs:       durNs,
		Slow:        slow,
		Spans: []obs.Span{
			{Name: "work", Worker: 0, StartNs: 0, DurNs: durNs, Attrs: map[string]int64{"iters": 3}},
		},
	}
}

func TestAppendGetSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if kept, err := s.Append(entry("alpha", i, int64(i)*1e6, false)); err != nil || !kept {
			t.Fatalf("append %d: kept=%v err=%v", i, kept, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	e, ok := s2.Get("alpha", "t000003")
	if !ok {
		t.Fatal("trace t000003 lost across reopen")
	}
	if e.DurNs != 3e6 || len(e.Spans) != 1 || e.Spans[0].Attrs["iters"] != 3 {
		t.Fatalf("reloaded entry corrupted: %+v", e)
	}
	if got := s2.LastSeq("alpha"); got != 5 {
		t.Fatalf("LastSeq = %d, want 5", got)
	}
	if got := s2.LastSeq("unknown"); got != 0 {
		t.Fatalf("LastSeq(unknown) = %d, want 0", got)
	}
}

// TestCrashTornTail simulates a crash mid-segment-write: a torn (truncated)
// final line must cost only that line, and reopening must not resurrect it
// or fail.
func TestCrashTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := s.Append(entry("alpha", i, 1e6, false)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: chop the last 10 bytes off the newest segment, leaving
	// a half-written JSON line.
	segs, err := filepath.Glob(filepath.Join(dir, "traces-*.ndjson"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-10); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	defer s2.Close()
	if _, ok := s2.Get("alpha", "t000002"); !ok {
		t.Fatal("intact entry before the tear must survive")
	}
	if _, ok := s2.Get("alpha", "t000003"); ok {
		t.Fatal("torn entry must not be resurrected")
	}
	if got := s2.LastSeq("alpha"); got != 2 {
		t.Fatalf("LastSeq = %d, want 2 (torn entry excluded)", got)
	}
	// The store must keep working after recovery.
	if kept, err := s2.Append(entry("alpha", 4, 1e6, false)); err != nil || !kept {
		t.Fatalf("append after recovery: kept=%v err=%v", kept, err)
	}
}

// TestSizePruningConcurrent drives concurrent appends through a tiny size
// budget: total bytes must respect the bound (modulo one active segment) and
// recent traces must stay retrievable while old segments are pruned.
func TestSizePruningConcurrent(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, MaxSegmentBytes: 2048, MaxTotalBytes: 8192})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const workers, perWorker = 4, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				e := entry(fmt.Sprintf("run%d", w), i+1, 1e6, false)
				if _, err := s.Append(e); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if got := s.Bytes(); got > 8192+2048 {
		t.Fatalf("store size %d exceeds budget + one segment", got)
	}
	// Pruning happened (200 entries of ~200 bytes each >> 8 KiB) and the
	// newest entries survived it.
	segs, _ := filepath.Glob(filepath.Join(dir, "traces-*.ndjson"))
	if len(segs) == 0 {
		t.Fatal("no segments on disk")
	}
	found := 0
	for w := 0; w < workers; w++ {
		if _, ok := s.Get(fmt.Sprintf("run%d", w), fmt.Sprintf("t%06d", perWorker)); ok {
			found++
		}
	}
	if found == 0 {
		t.Fatal("every worker's newest trace was pruned")
	}
	// LastSeq survives pruning: it tracks the high-water mark, not the index.
	if got := s.LastSeq("run0"); got != perWorker {
		t.Fatalf("LastSeq = %d, want %d", got, perWorker)
	}
}

// TestSlowCaptureDeterminism exercises the sampling/slow-bypass policy under
// concurrency (run with -race in CI): every slow trace must reach both the
// store and the slow log no matter how appends interleave.
func TestSlowCaptureDeterminism(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, SampleN: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const workers, perWorker = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				seq := w*perWorker + i + 1
				slow := seq%5 == 0
				if kept, err := s.Append(entry("alpha", seq, 2e9, slow)); err != nil {
					t.Errorf("append: %v", err)
				} else if slow && !kept {
					t.Errorf("slow trace t%06d sampled out", seq)
				}
			}
		}(w)
	}
	wg.Wait()

	const slowTotal = workers * perWorker / 5
	got := s.Slow(0)
	if len(got) != slowTotal {
		t.Fatalf("slow log has %d entries, want %d", len(got), slowTotal)
	}
	for _, e := range got {
		if !e.Slow || len(e.Spans) != 1 {
			t.Fatalf("slow entry lost detail: %+v", e)
		}
		// Every slow trace must also be retrievable from the main store.
		if _, ok := s.Get("alpha", e.TraceID); !ok {
			t.Fatalf("slow trace %s missing from store", e.TraceID)
		}
	}
	if limited := s.Slow(3); len(limited) != 3 {
		t.Fatalf("Slow(3) = %d entries, want 3", len(limited))
	}
}

func TestHeadSampling(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, SampleN: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	kept := 0
	for i := 1; i <= 20; i++ {
		ok, err := s.Append(entry("alpha", i, 1e6, false))
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			kept++
		}
	}
	if kept != 5 {
		t.Fatalf("kept %d of 20 with SampleN=4, want 5", kept)
	}
}

func TestAgeRetention(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, MaxSegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	// Old entries (timestamps far in the past), enough to fill segments.
	old := time.Now().Add(-48 * time.Hour).UnixNano()
	for i := 1; i <= 10; i++ {
		e := entry("alpha", i, 1e6, false)
		e.StartUnixNs = old
		if _, err := s.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	s2, err := Open(Options{Dir: dir, MaxAge: time.Hour, MaxSegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i := 1; i <= 9; i++ { // all full (rolled) segments were stale
		if _, ok := s2.Get("alpha", fmt.Sprintf("t%06d", i)); ok {
			t.Fatalf("stale trace t%06d survived age retention", i)
		}
	}
}
