package obs

// The metric-name catalog. Every metric the repo exports is declared here —
// name, kind, label keys, and help text — and the registry refuses names it
// does not know (Counter/Gauge/Histogram panic on an uncataloged name). That
// single chokepoint is what keeps docs/OBSERVABILITY.md, the /metrics
// scrape, and the CI grep ("no flor_* string literals outside this package")
// honest: a metric cannot exist without a catalog row, and a catalog row
// cannot exist without documentation (docs_test.go checks every catalog
// name appears in docs/OBSERVABILITY.md).

// Store-layer metric names (internal/store).
const (
	MStoreChunkDedupHits     = "flor_store_chunk_dedup_hits_total"
	MStoreChunksWritten      = "flor_store_chunks_written_total"
	MStoreChunkBytesWritten  = "flor_store_chunk_bytes_written_total"
	MStoreShardAppendSeconds = "flor_store_shard_append_seconds"
	MStoreSpoolPasses        = "flor_store_spool_passes_total"
	MStoreSpoolSeconds       = "flor_store_spool_seconds"
	MStoreSpoolArtifactBytes = "flor_store_spool_artifact_bytes"
	MStoreFetchBytes         = "flor_store_fetch_bytes_total"
	MStoreFetchFrames        = "flor_store_fetch_frames_total"
	MStorePrefetchIssued     = "flor_store_prefetch_issued_bytes_total"
	MStorePrefetchUsed       = "flor_store_prefetch_used_bytes_total"
	MStorePrefetchWasted     = "flor_store_prefetch_wasted_bytes_total"
	MStorePrefetchCancelled  = "flor_store_prefetch_cancelled_bytes_total"
	MStoreGCPasses           = "flor_store_gc_passes_total"
	MStoreGCMarkedChunks     = "flor_store_gc_marked_chunks_total"
	MStoreGCDeadChunks       = "flor_store_gc_dead_chunks_total"
	MStoreGCRewrittenShards  = "flor_store_gc_rewritten_shards_total"
	MStoreGCTombstonedPacks  = "flor_store_gc_tombstoned_packs_total"
	MStoreGCDeletedPacks     = "flor_store_gc_deleted_packs_total"
)

// Remote chunk-cache tier metric names (internal/store/cachetier).
const (
	MCacheTierHitBytes          = "flor_cachetier_hit_bytes_total"
	MCacheTierMissBytes         = "flor_cachetier_miss_bytes_total"
	MCacheTierSingleflightBytes = "flor_cachetier_singleflight_bytes_total"
	MCacheTierEvictions         = "flor_cachetier_evictions_total"
	MCacheTierBytes             = "flor_cachetier_bytes"
	MCacheTierEntries           = "flor_cachetier_entries"
)

// Scheduler metric names (internal/sched).
const (
	MSchedSlotAcquires    = "flor_sched_slot_acquires_total"
	MSchedSlotWaits       = "flor_sched_slot_waits_total"
	MSchedSlotWaitSeconds = "flor_sched_slot_wait_seconds"
	MSchedSlotsInUse      = "flor_sched_slots_in_use"
	MSchedStealAttempts   = "flor_sched_steal_attempts_total"
	MSchedLeaseSplits     = "flor_sched_lease_splits_total"
)

// Replay metric names (internal/replay, internal/backmat).
const (
	MReplayReplays             = "flor_replay_replays_total"
	MReplayIterations          = "flor_replay_iterations_total"
	MReplayRestoreNs           = "flor_replay_restore_ns_total"
	MReplayWorkNs              = "flor_replay_work_ns_total"
	MReplayWorkerBusyNs        = "flor_replay_worker_busy_ns_total"
	MReplayRestoredCheckpoints = "flor_replay_restored_checkpoints_total"
	MReplayRestoredBytes       = "flor_replay_restored_bytes_total"
	MReplayPayloadCacheHits    = "flor_replay_payload_cache_hits_total"
	MReplayPayloadCacheMisses  = "flor_replay_payload_cache_misses_total"
	MReplayPayloadCacheAdmits  = "flor_replay_payload_cache_admits_total"
)

// Serving metric names (internal/serve, flord).
const (
	MServeQueries        = "flor_serve_queries_total"
	MServeRejected       = "flor_serve_rejected_total"
	MServeQueueTimeouts  = "flor_serve_queue_timeouts_total"
	MServeErrors         = "flor_serve_errors_total"
	MServeQueueDepth     = "flor_serve_queue_depth"
	MServeInflight       = "flor_serve_inflight"
	MServeQuerySeconds   = "flor_serve_query_seconds"
	MServeRequestSeconds = "flor_serve_request_seconds"
	MServeStoreEvictions = "flor_serve_store_evictions_total"
	MServeStoreOpen      = "flor_serve_store_open"
	MServeDraining       = "flor_serve_draining"
	MServeTracesDropped  = "flor_serve_traces_dropped_total"
	MServeSlowQueries    = "flor_serve_slow_queries_total"
)

// Observability-infrastructure metric names (internal/obs itself: the
// durable trace store and the background-task recorder).
const (
	MObsTraceStoreAppends    = "flor_obs_tracestore_appends_total"
	MObsTraceStoreSampledOut = "flor_obs_tracestore_sampled_out_total"
	MObsTraceStorePruned     = "flor_obs_tracestore_pruned_segments_total"
	MObsTraceStoreBytes      = "flor_obs_tracestore_bytes"
	MObsTaskRuns             = "flor_obs_task_runs_total"
	MObsTaskSeconds          = "flor_obs_task_seconds"
)

// Kind is a metric's type in the Prometheus sense.
type Kind int

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE keyword.
func (k Kind) String() string {
	switch k {
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "counter"
	}
}

// Def is one catalog row: a metric's identity and documentation.
type Def struct {
	Name string
	Kind Kind
	// Labels lists the label keys this metric is exported with (empty for
	// unlabeled metrics). Informational: the registry does not enforce it,
	// the docs test and the catalog doc render it.
	Labels []string
	Help   string
}

// Catalog enumerates every exported metric in scrape order. /metrics renders
// families in this order, so scrapes diff cleanly across versions.
var Catalog = []Def{
	// store
	{MStoreChunkDedupHits, KindCounter, nil, "Chunk writes elided because the chunk pool already held the content."},
	{MStoreChunksWritten, KindCounter, nil, "Fresh chunks appended to pack shards."},
	{MStoreChunkBytesWritten, KindCounter, nil, "Encoded bytes appended to pack shards."},
	{MStoreShardAppendSeconds, KindHistogram, nil, "Latency of fanning one checkpoint's fresh frames across pack shards."},
	{MStoreSpoolPasses, KindCounter, nil, "Spool passes (segment + dirty-shard pack compression)."},
	{MStoreSpoolSeconds, KindHistogram, nil, "Spool pass latency."},
	{MStoreSpoolArtifactBytes, KindGauge, nil, "Compressed size of the spool artifacts after the last pass."},
	{MStoreFetchBytes, KindCounter, []string{"tier"}, "Encoded pack bytes served to restores, by fetch tier (mmap|scatter|ranged|cache|remote|cache-tier|singleflight; cache counts logical bytes skipped via payload-cache hits)."},
	{MStoreFetchFrames, KindCounter, []string{"tier"}, "Chunk frames served to restores, by fetch tier (mmap|scatter|ranged|cache|remote|cache-tier|singleflight)."},
	{MStorePrefetchIssued, KindCounter, nil, "Encoded pack bytes the speculative prefetcher pulled toward the cache tier ahead of the decode front."},
	{MStorePrefetchUsed, KindCounter, nil, "Prefetched bytes a restore later consumed (the speculation paid off)."},
	{MStorePrefetchWasted, KindCounter, nil, "Prefetched bytes never consumed by a restore before the prefetcher shut down."},
	{MStorePrefetchCancelled, KindCounter, nil, "Prefetch-hint bytes dropped before fetching because a lease steal or shutdown invalidated the plan."},
	{MStoreGCPasses, KindCounter, nil, "Chunk-reclaiming GC passes."},
	{MStoreGCMarkedChunks, KindCounter, nil, "Chunks marked live during GC mark phases."},
	{MStoreGCDeadChunks, KindCounter, nil, "Superseded chunks compacted out of pack shards."},
	{MStoreGCRewrittenShards, KindCounter, nil, "Shards rewritten to a new pack generation by compaction."},
	{MStoreGCTombstonedPacks, KindCounter, nil, "Replaced pack generations scheduled as grace-period tombstones."},
	{MStoreGCDeletedPacks, KindCounter, nil, "Tombstoned pack generations deleted after their grace period."},
	// cache tier (remote-backed stores)
	{MCacheTierHitBytes, KindCounter, nil, "Requested bytes the remote chunk-cache tier served locally."},
	{MCacheTierMissBytes, KindCounter, nil, "Requested bytes the remote chunk-cache tier fetched from the object store."},
	{MCacheTierSingleflightBytes, KindCounter, nil, "Requested bytes served by waiting on another reader's in-flight fetch of the same block (deduped GETs)."},
	{MCacheTierEvictions, KindCounter, nil, "Blocks evicted from the remote chunk-cache tier to stay within budget."},
	{MCacheTierBytes, KindGauge, nil, "Block bytes currently resident in the remote chunk-cache tier."},
	{MCacheTierEntries, KindGauge, nil, "Blocks currently resident in the remote chunk-cache tier."},
	// sched
	{MSchedSlotAcquires, KindCounter, nil, "Slot acquisitions from the shared worker pool."},
	{MSchedSlotWaits, KindCounter, nil, "Slot acquisitions that had to queue."},
	{MSchedSlotWaitSeconds, KindHistogram, nil, "Time slot acquisitions spent queued."},
	{MSchedSlotsInUse, KindGauge, nil, "Worker-pool slots currently held."},
	{MSchedStealAttempts, KindCounter, nil, "Steal attempts against the lease executor (profitable or not)."},
	{MSchedLeaseSplits, KindCounter, nil, "Leases split by a profitable steal."},
	// replay
	{MReplayReplays, KindCounter, nil, "Completed replays (all schedulers)."},
	{MReplayIterations, KindCounter, nil, "Main-loop iterations executed in replay work phases."},
	{MReplayRestoreNs, KindCounter, nil, "Nanoseconds replay workers spent restoring checkpoints."},
	{MReplayWorkNs, KindCounter, nil, "Nanoseconds replay workers spent in work phases."},
	{MReplayWorkerBusyNs, KindCounter, nil, "Nanoseconds replay workers were busy (setup + init + work)."},
	{MReplayRestoredCheckpoints, KindCounter, nil, "Checkpoints restored by replay workers."},
	{MReplayRestoredBytes, KindCounter, nil, "Logical checkpoint bytes restored by replay workers."},
	{MReplayPayloadCacheHits, KindCounter, nil, "Decoded-payload cache hits (content served without decoding)."},
	{MReplayPayloadCacheMisses, KindCounter, nil, "Decoded-payload cache misses (content decoded)."},
	{MReplayPayloadCacheAdmits, KindCounter, nil, "Payloads admitted to the cache on their second touch."},
	// serve
	{MServeQueries, KindCounter, []string{"run", "kind"}, "Queries completed successfully, by run and kind (replay|sample)."},
	{MServeRejected, KindCounter, []string{"run"}, "Queries rejected because the run's wait queue was full (429)."},
	{MServeQueueTimeouts, KindCounter, []string{"run"}, "Queries that timed out waiting for admission or worker slots (504)."},
	{MServeErrors, KindCounter, []string{"run"}, "Queries that failed while executing (500)."},
	{MServeQueueDepth, KindGauge, []string{"run"}, "Queries currently waiting for admission."},
	{MServeInflight, KindGauge, []string{"run"}, "Queries currently executing."},
	{MServeQuerySeconds, KindHistogram, []string{"kind"}, "End-to-end query latency through the serving path, by kind."},
	{MServeRequestSeconds, KindHistogram, []string{"route"}, "HTTP request latency, by route pattern."},
	{MServeStoreEvictions, KindCounter, nil, "Open-store LRU evictions."},
	{MServeStoreOpen, KindGauge, nil, "Stores currently resident in the open-store LRU."},
	{MServeDraining, KindGauge, nil, "1 while a graceful drain is in progress, else 0."},
	{MServeTracesDropped, KindCounter, []string{"run"}, "Query traces evicted from a run's in-memory trace ring by newer queries."},
	{MServeSlowQueries, KindCounter, []string{"run"}, "Queries slower than the configured slow-query threshold."},
	// obs infrastructure
	{MObsTraceStoreAppends, KindCounter, nil, "Traces persisted to the durable trace store."},
	{MObsTraceStoreSampledOut, KindCounter, nil, "Traces dropped by head sampling before reaching the trace store."},
	{MObsTraceStorePruned, KindCounter, nil, "Trace-store segments pruned by size or age retention."},
	{MObsTraceStoreBytes, KindGauge, nil, "Bytes currently held by the trace store's segments."},
	{MObsTaskRuns, KindCounter, []string{"task"}, "Completed background tasks (GC passes, spool passes), by task name."},
	{MObsTaskSeconds, KindHistogram, []string{"task"}, "Background-task latency, by task name."},
}

var catalogByName = func() map[string]Def {
	m := make(map[string]Def, len(Catalog))
	for _, d := range Catalog {
		if _, dup := m[d.Name]; dup {
			panic("obs: duplicate catalog name " + d.Name)
		}
		m[d.Name] = d
	}
	return m
}()

// Lookup returns the catalog row for name.
func Lookup(name string) (Def, bool) {
	d, ok := catalogByName[name]
	return d, ok
}
