package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Span is one timed unit of work inside a trace. Times are nanoseconds
// since the trace began — wall-clock offsets for live traces, virtual
// nanoseconds for simulation traces — so a trace is self-contained and two
// virtual traces of the same schedule serialize byte-identically. Attrs are
// numeric by design: replay spans carry counts and byte totals, and numeric
// attributes keep the NDJSON encoding canonical (encoding/json sorts map
// keys) for diffing.
type Span struct {
	Name    string           `json:"name"`
	Worker  int              `json:"worker"`
	StartNs int64            `json:"start_ns"`
	DurNs   int64            `json:"dur_ns"`
	Attrs   map[string]int64 `json:"attrs,omitempty"`
}

// Trace collects spans. A nil *Trace no-ops on every method, so callers
// thread an optional trace without branching. Construct live traces with
// NewTrace (Now returns wall-clock offsets) and simulation traces with
// NewVirtualTrace (callers supply virtual times; Now returns 0).
//
// Trace is safe for concurrent use; Spans and WriteNDJSON return spans
// sorted by (start, worker, name), so a finished trace renders identically
// regardless of which worker appended first.
type Trace struct {
	mu      sync.Mutex
	t0      time.Time
	virtual bool
	spans   []Span
}

// NewTrace returns a live trace anchored at the current wall clock.
func NewTrace() *Trace { return &Trace{t0: time.Now()} }

// NewVirtualTrace returns a trace for deterministic virtual-time spans:
// callers supply StartNs/DurNs in virtual nanoseconds.
func NewVirtualTrace() *Trace { return &Trace{virtual: true} }

// NewTraceFromSpans rehydrates a trace from previously recorded spans — the
// read path for traces reloaded from the durable trace store. The result is
// a virtual-time trace (Now returns 0): its clock anchor is long gone, and
// the spans already carry their offsets.
func NewTraceFromSpans(spans []Span) *Trace {
	return &Trace{virtual: true, spans: append([]Span(nil), spans...)}
}

// Virtual reports whether the trace is a virtual-time trace.
func (t *Trace) Virtual() bool { return t != nil && t.virtual }

// Now returns nanoseconds since the trace began (0 for nil and virtual
// traces, whose callers own the clock).
func (t *Trace) Now() int64 {
	if t == nil || t.virtual {
		return 0
	}
	return time.Since(t.t0).Nanoseconds()
}

// Add appends one span (no-op on nil).
func (t *Trace) Add(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// Spans returns a sorted copy of the recorded spans.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].StartNs != out[j].StartNs {
			return out[i].StartNs < out[j].StartNs
		}
		if out[i].Worker != out[j].Worker {
			return out[i].Worker < out[j].Worker
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// WriteNDJSON renders the trace as newline-delimited JSON, one span per
// line, in sorted span order. Two virtual traces of identical schedules
// produce identical bytes.
func (t *Trace) WriteNDJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, s := range t.Spans() {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return nil
}
