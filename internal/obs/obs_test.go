package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCatalogWellFormed(t *testing.T) {
	for _, d := range Catalog {
		if !strings.HasPrefix(d.Name, "flor_") {
			t.Errorf("catalog name %q lacks flor_ prefix", d.Name)
		}
		if d.Help == "" {
			t.Errorf("catalog name %q has no help text", d.Name)
		}
		if d.Kind == KindCounter && !strings.HasSuffix(d.Name, "_total") {
			t.Errorf("counter %q should end in _total", d.Name)
		}
		if d.Kind != KindCounter && strings.HasSuffix(d.Name, "_total") {
			t.Errorf("%s %q must not end in _total", d.Kind, d.Name)
		}
	}
	if _, ok := Lookup(MServeQueries); !ok {
		t.Fatal("Lookup missed a catalog constant")
	}
	if _, ok := Lookup("flor_bogus_total"); ok {
		t.Fatal("Lookup accepted an uncataloged name")
	}
}

func TestNilHandlesNoOp(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(0.5)
	h.ObserveNs(123)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.BucketCounts() != nil {
		t.Fatal("nil handles must read as zero")
	}

	var r *Registry
	if r.Counter(MServeStoreEvictions) != nil {
		t.Fatal("nil registry must hand out nil counters")
	}
	if r.Gauge(MServeStoreOpen) != nil || r.Histogram(MServeQuerySeconds, L("kind", "replay")) != nil {
		t.Fatal("nil registry must hand out nil gauges/histograms")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

// TestDisabledHandlesAllocFree is the CI guard behind the "no-op registry
// means no tier-1 regression" claim: the disabled path must not allocate.
func TestDisabledHandlesAllocFree(t *testing.T) {
	var c *Counter
	var h *Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(7)
		h.ObserveNs(12345)
	})
	if allocs != 0 {
		t.Fatalf("disabled handles allocated %.1f times per op, want 0", allocs)
	}
	var r *Registry
	allocs = testing.AllocsPerRun(1000, func() {
		r.Counter(MServeStoreEvictions).Inc()
	})
	if allocs != 0 {
		t.Fatalf("nil-registry handle resolution allocated %.1f times, want 0", allocs)
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter(MStoreChunksWritten)
	g := r.Gauge(MSchedSlotsInUse)
	h := r.Histogram(MStoreShardAppendSeconds)
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(0.002)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got, want := h.Sum(), 0.002*workers*perWorker; math.Abs(got-want) > 1e-6 {
		t.Fatalf("histogram sum = %g, want ~%g", got, want)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(MServeQuerySeconds, L("kind", "replay"))
	// Prometheus buckets are inclusive upper bounds: an observation exactly
	// on a bound lands in that bound's bucket.
	h.Observe(0.0001)  // == bounds[0]
	h.Observe(0.00011) // > bounds[0], <= bounds[1]
	h.Observe(10)      // == last bound
	h.Observe(11)      // beyond: +Inf bucket
	h.Observe(0)       // below everything: first bucket
	h.Observe(-1)      // negative: still first bucket
	counts := h.BucketCounts()
	if len(counts) != len(DurationBuckets)+1 {
		t.Fatalf("bucket count = %d, want %d", len(counts), len(DurationBuckets)+1)
	}
	if counts[0] != 3 {
		t.Errorf("bucket[0] = %d, want 3 (0, -1, and the exact bound)", counts[0])
	}
	if counts[1] != 1 {
		t.Errorf("bucket[1] = %d, want 1", counts[1])
	}
	if last := counts[len(counts)-2]; last != 1 {
		t.Errorf("last finite bucket = %d, want 1 (exactly 10s)", last)
	}
	if inf := counts[len(counts)-1]; inf != 1 {
		t.Errorf("+Inf bucket = %d, want 1", inf)
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
}

func TestRegistryPanicsOffCatalog(t *testing.T) {
	r := NewRegistry()
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("uncataloged", func() { r.Counter("flor_not_in_catalog_total") })
	mustPanic("kind mismatch", func() { r.Gauge(MStoreChunksWritten) })
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter(MStoreChunksWritten).Add(42)
	r.Gauge(MServeStoreOpen).Set(3)
	r.Counter(MServeQueries, L("run", "alpha"), L("kind", "replay")).Add(7)
	r.Counter(MServeQueries, L("run", "beta"), L("kind", "sample")).Inc()
	h := r.Histogram(MServeQuerySeconds, L("kind", "replay"))
	h.Observe(0.0002) // bucket le=0.00025
	h.Observe(0.3)    // bucket le=0.5
	h.Observe(99)     // +Inf

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	wantLines := []string{
		"# HELP flor_store_chunks_written_total Fresh chunks appended to pack shards.",
		"# TYPE flor_store_chunks_written_total counter",
		"flor_store_chunks_written_total 42",
		"# TYPE flor_serve_queries_total counter",
		`flor_serve_queries_total{kind="replay",run="alpha"} 7`,
		`flor_serve_queries_total{kind="sample",run="beta"} 1`,
		"# TYPE flor_serve_store_open gauge",
		"flor_serve_store_open 3",
		"# TYPE flor_serve_query_seconds histogram",
		`flor_serve_query_seconds_bucket{kind="replay",le="0.0001"} 0`,
		`flor_serve_query_seconds_bucket{kind="replay",le="0.00025"} 1`,
		`flor_serve_query_seconds_bucket{kind="replay",le="0.5"} 2`,
		`flor_serve_query_seconds_bucket{kind="replay",le="10"} 2`,
		`flor_serve_query_seconds_bucket{kind="replay",le="+Inf"} 3`,
		`flor_serve_query_seconds_sum{kind="replay"} 99.3002`,
		`flor_serve_query_seconds_count{kind="replay"} 3`,
	}
	for _, want := range wantLines {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("scrape missing line %q\n---\n%s", want, out)
		}
	}

	// Families render in catalog order: store before serve.
	if strings.Index(out, "flor_store_chunks_written_total") > strings.Index(out, "flor_serve_queries_total") {
		t.Error("families not in catalog order")
	}
	// Every non-comment line parses as "name{labels} value" once any
	// OpenMetrics exemplar suffix (` # {...} value`) is stripped.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if i := strings.Index(line, " # "); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

func TestHistogramExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(MServeQuerySeconds, L("kind", "replay"))
	h.ObserveExemplar(0.0002, "t000001") // bucket le=0.00025
	h.ObserveNsExemplar(300_000_000, "t000002")
	h.ObserveExemplar(99, "t000003")        // +Inf bucket
	h.ObserveExemplar(0.0002, "")           // empty ID: counted, no exemplar change
	h.ObserveNsExemplar(250_000, "t000009") // same bucket as t000001: wins

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	wantLines := []string{
		`flor_serve_query_seconds_bucket{kind="replay",le="0.00025"} 3 # {trace_id="t000009"} 0.00025`,
		`flor_serve_query_seconds_bucket{kind="replay",le="0.5"} 4 # {trace_id="t000002"} 0.3`,
		`flor_serve_query_seconds_bucket{kind="replay",le="+Inf"} 5 # {trace_id="t000003"} 99`,
	}
	for _, want := range wantLines {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("scrape missing exemplar line %q\n---\n%s", want, out)
		}
	}
	// Buckets without exemplars stay plain.
	if !strings.Contains(out, `flor_serve_query_seconds_bucket{kind="replay",le="0.0001"} 0`+"\n") {
		t.Errorf("un-exemplified bucket line changed\n---\n%s", out)
	}
	var nilH *Histogram
	nilH.ObserveExemplar(1, "t1") // must no-op
	nilH.ObserveNsExemplar(1, "t1")
}

func TestBackgroundTasks(t *testing.T) {
	resetTasksForTest()
	defer resetTasksForTest()

	a := BeginTask("gc")
	a.Trace().Add(Span{Name: "mark", StartNs: 0, DurNs: 5})
	recs := Tasks()
	if len(recs) != 1 || recs[0].Name != "gc" || recs[0].Done {
		t.Fatalf("active task not reported: %+v", recs)
	}
	a.Trace().Add(Span{Name: "sweep", StartNs: 5, DurNs: 7})
	a.End()
	a.End() // idempotent

	b := BeginTask("spool")
	b.End()

	recs = Tasks()
	if len(recs) != 2 {
		t.Fatalf("tasks = %d, want 2", len(recs))
	}
	// Completed, newest first.
	if recs[0].Name != "spool" || recs[1].Name != "gc" {
		t.Fatalf("order = %s, %s; want spool, gc", recs[0].Name, recs[1].Name)
	}
	if !recs[0].Done || !recs[1].Done {
		t.Fatal("completed tasks must report Done")
	}
	if len(recs[1].Spans) != 2 || recs[1].Spans[0].Name != "mark" {
		t.Fatalf("gc spans = %+v, want mark+sweep", recs[1].Spans)
	}
	if recs[1].DurNs <= 0 {
		t.Fatal("completed task must have positive duration")
	}

	// The ring is bounded.
	for i := 0; i < taskHistory+10; i++ {
		BeginTask("filler").End()
	}
	if got := len(Tasks()); got != taskHistory {
		t.Fatalf("ring length = %d, want %d", got, taskHistory)
	}

	var nilTask *ActiveTask
	nilTask.End()
	if nilTask.Trace() != nil {
		t.Fatal("nil task must hand out nil trace")
	}
}

func TestEnableDisableDefault(t *testing.T) {
	defer Disable()
	Disable()
	if Default() != nil {
		t.Fatal("Default should be nil while disabled")
	}
	if C(MStoreGCPasses) != nil {
		t.Fatal("C should resolve nil while disabled")
	}
	r1 := Enable()
	if r1 == nil || Default() != r1 {
		t.Fatal("Enable must install a live registry")
	}
	if Enable() != r1 {
		t.Fatal("Enable must be idempotent")
	}
	C(MStoreGCPasses).Inc()
	if got := r1.Counter(MStoreGCPasses).Value(); got != 1 {
		t.Fatalf("package-level counter = %d, want 1", got)
	}
	Disable()
	if Default() != nil {
		t.Fatal("Disable must clear the registry")
	}
}
