package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders log severities.
type Level int32

// Log levels, least to most severe.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the level keyword used in log lines and -log-level values.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "info"
	}
}

// ParseLevel parses a -log-level flag value.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}

// Logger is a leveled, structured logger emitting one key=value line per
// event:
//
//	ts=2026-08-08T10:12:13.004Z level=info msg="run registered" run=demo slots=4
//
// Keys render in the order given; values are quoted only when they need it.
// A nil *Logger discards everything, so optional logging threads through
// without branching. Safe for concurrent use.
type Logger struct {
	mu  sync.Mutex
	w   io.Writer
	min atomic.Int32
	now func() time.Time // test hook; nil means time.Now
}

// NewLogger returns a logger writing lines at or above min to w.
func NewLogger(w io.Writer, min Level) *Logger {
	l := &Logger{w: w, now: time.Now}
	l.min.Store(int32(min))
	return l
}

// SetLevel changes the minimum level.
func (l *Logger) SetLevel(min Level) {
	if l != nil {
		l.min.Store(int32(min))
	}
}

// Enabled reports whether lines at lv would be written.
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && lv >= Level(l.min.Load())
}

// Log writes one line at lv. kv alternates key, value; values are rendered
// with %v. An odd trailing key renders as key=MISSING rather than dropping.
func (l *Logger) Log(lv Level, msg string, kv ...any) {
	if !l.Enabled(lv) {
		return
	}
	var b strings.Builder
	b.Grow(64 + 16*len(kv))
	b.WriteString("ts=")
	b.WriteString(l.now().UTC().Format(time.RFC3339Nano))
	b.WriteString(" level=")
	b.WriteString(lv.String())
	b.WriteString(" msg=")
	writeLogValue(&b, msg)
	for i := 0; i < len(kv); i += 2 {
		b.WriteByte(' ')
		b.WriteString(fmt.Sprint(kv[i]))
		b.WriteByte('=')
		if i+1 < len(kv) {
			writeLogValue(&b, fmt.Sprint(kv[i+1]))
		} else {
			b.WriteString("MISSING")
		}
	}
	b.WriteByte('\n')
	l.mu.Lock()
	io.WriteString(l.w, b.String())
	l.mu.Unlock()
}

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, kv ...any) { l.Log(LevelDebug, msg, kv...) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, kv ...any) { l.Log(LevelInfo, msg, kv...) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, kv ...any) { l.Log(LevelWarn, msg, kv...) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, kv ...any) { l.Log(LevelError, msg, kv...) }

func writeLogValue(b *strings.Builder, v string) {
	if v != "" && !strings.ContainsAny(v, " \t\n\"=") {
		b.WriteString(v)
		return
	}
	b.WriteString(strconv.Quote(v))
}
