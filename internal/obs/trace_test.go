package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestNilTraceNoOps(t *testing.T) {
	var tr *Trace
	tr.Add(Span{Name: "x"})
	if tr.Now() != 0 || tr.Virtual() || tr.Spans() != nil {
		t.Fatal("nil trace must no-op")
	}
}

func TestTraceSortedDeterministic(t *testing.T) {
	mk := func(order []int) string {
		tr := NewVirtualTrace()
		spans := []Span{
			{Name: "work", Worker: 1, StartNs: 100, DurNs: 50, Attrs: map[string]int64{"iters": 9, "bytes": 4}},
			{Name: "init", Worker: 0, StartNs: 0, DurNs: 100},
			{Name: "work", Worker: 0, StartNs: 100, DurNs: 80},
		}
		var wg sync.WaitGroup
		for _, i := range order {
			wg.Add(1)
			go func(s Span) { defer wg.Done(); tr.Add(s) }(spans[i])
		}
		wg.Wait()
		var b strings.Builder
		if err := tr.WriteNDJSON(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a := mk([]int{0, 1, 2})
	b := mk([]int{2, 1, 0})
	if a != b {
		t.Fatalf("trace output depends on append order:\n%s\n---\n%s", a, b)
	}
	lines := strings.Split(strings.TrimRight(a, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 NDJSON lines, got %d", len(lines))
	}
	if !strings.Contains(lines[0], `"name":"init"`) {
		t.Errorf("first span should be init: %s", lines[0])
	}
	if !strings.Contains(lines[1], `"worker":0`) || !strings.Contains(lines[2], `"worker":1`) {
		t.Errorf("equal-start spans must order by worker:\n%s\n%s", lines[1], lines[2])
	}
	// Attr maps serialize with sorted keys (encoding/json guarantee) so
	// NDJSON is canonical.
	if !strings.Contains(lines[2], `"attrs":{"bytes":4,"iters":9}`) {
		t.Errorf("attrs not canonical: %s", lines[2])
	}
}

func TestTraceNowModes(t *testing.T) {
	if NewVirtualTrace().Now() != 0 {
		t.Fatal("virtual trace Now must be 0 — callers own the clock")
	}
	live := NewTrace()
	if live.Virtual() {
		t.Fatal("live trace must not report virtual")
	}
	if live.Now() < 0 {
		t.Fatal("live trace Now must be non-negative")
	}
}
