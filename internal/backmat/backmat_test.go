package backmat

import (
	"bytes"
	"fmt"
	"testing"

	"flor.dev/flor/internal/store"
	"flor.dev/flor/internal/tensor"
	"flor.dev/flor/internal/value"
	"flor.dev/flor/internal/xrand"
)

func newStore(t *testing.T) *store.Store {
	t.Helper()
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func sampleValues(n, tensorLen int) []NamedValue {
	vals := make([]NamedValue, n)
	for i := range vals {
		vals[i] = NamedValue{
			Name: fmt.Sprintf("var%d", i),
			V:    &value.Tensor{T: tensor.Randn(xrand.New(uint64(i)+1), 1, tensorLen)},
		}
	}
	return vals
}

func TestBundleRoundTrip(t *testing.T) {
	vals := sampleValues(3, 16)
	items := make([]NamedPayload, len(vals))
	for i, nv := range vals {
		items[i] = NamedPayload{Name: nv.Name, Payload: nv.V.Snapshot()}
	}
	enc := EncodeBundle(items)
	got, err := DecodeBundle(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("decoded %d items", len(got))
	}
	for i, it := range got {
		if it.Name != fmt.Sprintf("var%d", i) {
			t.Fatalf("item %d name %q", i, it.Name)
		}
		orig := items[i].Payload.(value.TensorPayload).Tensor()
		dec := it.Payload.(value.TensorPayload).Tensor()
		if !tensor.Equal(orig, dec) {
			t.Fatalf("item %d tensor mismatch", i)
		}
	}
}

func TestSectionsRoundTripAndBundleEquivalence(t *testing.T) {
	vals := sampleValues(5, 64)
	items := make([]NamedPayload, len(vals))
	for i, nv := range vals {
		items[i] = NamedPayload{Name: nv.Name, Payload: nv.V.Snapshot()}
	}
	secs := EncodeSections(items)
	// The section path must be byte-equivalent to the monolithic encoder.
	if got, want := BundleBytes(secs), EncodeBundle(items); !bytes.Equal(got, want) {
		t.Fatal("BundleBytes(EncodeSections(items)) != EncodeBundle(items)")
	}
	dec, err := DecodeSections(secs)
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range dec {
		if it.Name != items[i].Name {
			t.Fatalf("item %d name %q", i, it.Name)
		}
		if !tensor.Equal(it.Payload.(value.TensorPayload).Tensor(), items[i].Payload.(value.TensorPayload).Tensor()) {
			t.Fatalf("item %d tensor mismatch", i)
		}
	}
}

func TestDecodeSectionsRejectsGarbage(t *testing.T) {
	secs := []store.Section{{Name: "w", Data: []byte{0xff, 0xff, 0xff}}}
	if _, err := DecodeSections(secs); err == nil {
		t.Fatal("garbage section decoded")
	}
}

func TestFrozenStateDedupsAcrossMaterializations(t *testing.T) {
	// A frozen model checkpointed every epoch must hit the store's chunk
	// dedup: only the first materialization pays for its bytes.
	st := newStore(t)
	m := New(st, Fork)
	frozen := &value.Tensor{T: tensor.Randn(xrand.New(99), 1, 1<<16)}
	for e := 0; e < 4; e++ {
		m.Materialize(store.Key{LoopID: "train", Exec: e},
			[]NamedValue{{Name: "net", V: frozen}}, 0)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	stats := m.Stats()
	if stats.BytesWritten < 4*(1<<19) { // 4 epochs × 64Ki floats × 8 bytes
		t.Fatalf("BytesWritten = %d, want full logical volume", stats.BytesWritten)
	}
	if stats.StoredBytes > stats.BytesWritten/2 {
		t.Fatalf("StoredBytes = %d of %d logical; frozen state not deduped",
			stats.StoredBytes, stats.BytesWritten)
	}
	if r := st.Dedup().Ratio(); r < 3 {
		t.Fatalf("dedup ratio = %.2f, want ~4 for 4 identical checkpoints", r)
	}
}

func TestBundleDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeBundle([]byte{0xff, 0xff, 0xff}); err == nil {
		t.Fatal("garbage bundle decoded")
	}
}

func TestEveryStrategyCommitsIdenticalCheckpoints(t *testing.T) {
	for _, strat := range []Strategy{Baseline, Queue, Plasma, Fork} {
		t.Run(strat.String(), func(t *testing.T) {
			st := newStore(t)
			m := New(st, strat)
			vals := sampleValues(4, 64)
			key := store.Key{LoopID: "train", Exec: 0}
			m.Materialize(key, vals, 1000)
			if err := m.Close(); err != nil {
				t.Fatal(err)
			}
			raw, err := st.Get(key)
			if err != nil {
				t.Fatalf("checkpoint missing after %s: %v", strat, err)
			}
			items, err := DecodeBundle(raw)
			if err != nil {
				t.Fatal(err)
			}
			if len(items) != 4 {
				t.Fatalf("bundle has %d items, want 4", len(items))
			}
			for i, it := range items {
				live := vals[i].V.(*value.Tensor)
				if !tensor.Equal(it.Payload.(value.TensorPayload).Tensor(), live.T) {
					t.Fatalf("strategy %s: item %q state mismatch", strat, it.Name)
				}
			}
		})
	}
}

func TestSnapshotIsolatesFromPostMaterializeMutation(t *testing.T) {
	// After Materialize returns, the training loop continues mutating live
	// values; the checkpoint must reflect the state at snapshot time.
	st := newStore(t)
	m := New(st, Fork)
	live := &value.Tensor{T: tensor.Full(1, 256)}
	key := store.Key{LoopID: "train", Exec: 0}
	m.Materialize(key, []NamedValue{{Name: "w", V: live}}, 0)
	live.T.Fill(999) // simulated next-epoch mutation racing the background write
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := st.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	items, _ := DecodeBundle(raw)
	if got := items[0].Payload.(value.TensorPayload).Tensor().At(0); got != 1 {
		t.Fatalf("checkpoint captured post-snapshot state: %g", got)
	}
}

func TestDrainFlushesAndStaysUsable(t *testing.T) {
	st := newStore(t)
	m := New(st, Fork)
	defer m.Close()
	k0 := store.Key{LoopID: "L", Exec: 0}
	m.Materialize(k0, sampleValues(2, 32), 0)
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if !st.Has(k0) {
		t.Fatal("checkpoint not committed after Drain")
	}
	k1 := store.Key{LoopID: "L", Exec: 1}
	m.Materialize(k1, sampleValues(2, 32), 0)
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if !st.Has(k1) {
		t.Fatal("materializer unusable after Drain")
	}
}

func TestStatsAccounting(t *testing.T) {
	st := newStore(t)
	m := New(st, Fork)
	for i := 0; i < 5; i++ {
		m.Materialize(store.Key{LoopID: "L", Exec: i}, sampleValues(2, 128), 0)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	stats := m.Stats()
	if stats.Checkpoints != 5 {
		t.Fatalf("Checkpoints = %d", stats.Checkpoints)
	}
	if stats.CallerNs <= 0 || stats.SnapshotNs <= 0 {
		t.Fatalf("caller-side timings not recorded: %+v", stats)
	}
	if stats.SerializeNs <= 0 || stats.WriteNs <= 0 || stats.BytesWritten <= 0 {
		t.Fatalf("background timings not recorded: %+v", stats)
	}
	if stats.MaxLiveWorkers < 1 {
		t.Fatalf("MaxLiveWorkers = %d", stats.MaxLiveWorkers)
	}
}

func TestBackgroundStrategiesDontPaySerializationOnCaller(t *testing.T) {
	// The defining property of Fork/Plasma vs Baseline (Fig 5): caller time
	// excludes serialization. We verify structurally: for Fork, the caller
	// time equals snapshot time plus handoff, and SerializeNs is accounted
	// to the background, not the caller.
	st := newStore(t)
	m := New(st, Fork)
	m.Materialize(store.Key{LoopID: "L", Exec: 0}, sampleValues(1, 1<<16), 0)
	callerBeforeDrain := m.Stats().CallerNs
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	stats := m.Stats()
	// Serialization of a 64K-element tensor dwarfs a snapshot memcpy; if the
	// caller had paid for it, CallerNs would be >= SerializeNs.
	if callerBeforeDrain > stats.SnapshotNs+stats.SerializeNs/2 {
		t.Fatalf("Fork caller paid for serialization: caller=%d snap=%d ser=%d",
			callerBeforeDrain, stats.SnapshotNs, stats.SerializeNs)
	}
}

func TestObserverSeesCommittedMetas(t *testing.T) {
	st := newStore(t)
	m := New(st, Fork)
	ch := make(chan *store.Meta, 8)
	m.SetObserver(func(meta *store.Meta) { ch <- meta })
	m.Materialize(store.Key{LoopID: "L", Exec: 0}, sampleValues(1, 64), 777)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case meta := <-ch:
		if meta.Key.LoopID != "L" || meta.ComputNs != 777 {
			t.Fatalf("observer meta wrong: %+v", meta)
		}
		if meta.MaterNs <= 0 {
			t.Fatalf("observer meta has no materialization time: %+v", meta)
		}
	default:
		t.Fatal("observer never called")
	}
}

func TestLatestCheckpointWinsAcrossStrategies(t *testing.T) {
	st := newStore(t)
	m := New(st, Queue)
	key := store.Key{LoopID: "L", Exec: 0}
	v := &value.Tensor{T: tensor.Full(1, 8)}
	m.Materialize(key, []NamedValue{{Name: "w", V: v}}, 0)
	v.T.Fill(2)
	m.Materialize(key, []NamedValue{{Name: "w", V: v}}, 0)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	raw, _ := st.Get(key)
	items, _ := DecodeBundle(raw)
	if got := items[0].Payload.(value.TensorPayload).Tensor().At(0); got != 2 {
		t.Fatalf("latest checkpoint not served: %g", got)
	}
}

func TestMixedKindBundle(t *testing.T) {
	st := newStore(t)
	m := New(st, Fork)
	rng := xrand.New(5)
	rng.Uint64()
	vals := []NamedValue{
		{Name: "epoch", V: &value.Int{V: 7}},
		{Name: "loss", V: &value.Float{V: 0.25}},
		{Name: "rng", V: &value.RNG{R: rng}},
		{Name: "w", V: &value.Tensor{T: tensor.Full(3, 4)}},
	}
	key := store.Key{LoopID: "L", Exec: 0}
	m.Materialize(key, vals, 0)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	raw, _ := st.Get(key)
	items, err := DecodeBundle(raw)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]value.Kind{}
	for _, it := range items {
		kinds[it.Name] = it.Payload.Kind()
	}
	if kinds["epoch"] != value.KindInt || kinds["loss"] != value.KindFloat ||
		kinds["rng"] != value.KindRNG || kinds["w"] != value.KindTensor {
		t.Fatalf("kinds wrong: %v", kinds)
	}
}
