// Package backmat implements checkpoint materialization, including the four
// strategies compared in the paper's Figure 5.
//
// Materializing a checkpoint decomposes into three costs:
//
//	snapshot  — deep-copying mutable state (unavoidably on the training thread;
//	            the analogue of fork()'s copy-on-write page duplication)
//	serialize — encoding snapshots into bytes (≈4.3× the cost of I/O, §5.1)
//	write     — committing bytes to the checkpoint store
//
// The strategies differ in which of these block the training thread:
//
//	Baseline (cloudpickle):  snapshot + serialize + write on the caller
//	Queue (IPC-Queue):       snapshot + serialize on the caller; write behind
//	Plasma (IPC-Plasma):     snapshot on the caller, handed off per object;
//	                         serialize + write behind
//	Fork (the paper's):      snapshot on the caller, handed off per batched
//	                         bundle; serialize + write behind
//
// Fork and Plasma block the caller for nearly the same time; Fork's batching
// (one handoff per checkpoint instead of one per object) gives it the small
// edge the paper reports.
//
// Since checkpoint format v2, serialization itself is also parallel:
// bundles encode as one section per environment entry across the ckptfmt
// worker pool (EncodeSections), and format-v2 stores chunk, frame, and
// deduplicate those sections (store.PutSections). Every strategy gets the
// parallel encode — the strategies only decide *where* it runs relative to
// the training thread.
package backmat

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"flor.dev/flor/internal/ckptfmt"
	"flor.dev/flor/internal/codec"
	"flor.dev/flor/internal/obs"
	"flor.dev/flor/internal/store"
	"flor.dev/flor/internal/value"
)

// Strategy selects a materialization implementation.
type Strategy int

// The four strategies of Figure 5. Fork — the paper's design and the
// default-on configuration — is the zero value, so a zero-valued options
// struct gets background materialization.
const (
	Fork Strategy = iota
	Baseline
	Queue
	Plasma
)

// String returns the paper's name for the strategy.
func (s Strategy) String() string {
	switch s {
	case Baseline:
		return "Baseline"
	case Queue:
		return "IPC-Queue"
	case Plasma:
		return "IPC-Plasma"
	case Fork:
		return "Fork"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// NamedValue pairs an environment variable name with its live value.
type NamedValue struct {
	Name string
	V    value.Value
}

// NamedPayload pairs a variable name with its snapshotted payload.
type NamedPayload struct {
	Name    string
	Payload value.Payload
}

// EncodeBundle serializes a checkpoint bundle: the side-effects of one loop
// execution, as (name, payload) pairs.
func EncodeBundle(items []NamedPayload) []byte {
	w := codec.NewWriter()
	w.Uvarint(uint64(len(items)))
	for _, it := range items {
		w.String(it.Name)
		value.EncodePayload(w, it.Payload)
	}
	return w.Bytes()
}

// EncodeSections serializes a checkpoint bundle as one section per entry,
// encoding entries in parallel across the ckptfmt worker pool. Sections are
// the unit the format-v2 store chunks, frames, and deduplicates; wherever a
// strategy runs serialization — inline for Baseline and Queue, behind the
// training thread for Plasma and Fork — it now also runs wide.
func EncodeSections(items []NamedPayload) []store.Section {
	secs := make([]store.Section, len(items))
	ckptfmt.ParallelDo(len(items), func(i int) {
		w := codec.NewWriter()
		value.EncodePayload(w, items[i].Payload)
		secs[i] = store.Section{Name: items[i].Name, Data: w.Bytes()}
	})
	return secs
}

// DecodeSections parses sections back into bundle items, decoding entries in
// parallel; the replay-side counterpart of EncodeSections.
func DecodeSections(secs []store.Section) ([]NamedPayload, error) {
	items := make([]NamedPayload, len(secs))
	errs := make([]error, len(secs))
	ckptfmt.ParallelDo(len(secs), func(i int) {
		p, err := value.DecodeTaggedPayload(codec.NewReader(secs[i].Data))
		if err != nil {
			errs[i] = fmt.Errorf("backmat: decode %q: %w", secs[i].Name, err)
			return
		}
		items[i] = NamedPayload{Name: secs[i].Name, Payload: p}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return items, nil
}

// DefaultPayloadCacheBytes bounds a PayloadCache: generous for the frozen
// backbones it exists to hold, small next to the training state itself.
const DefaultPayloadCacheBytes = 256 << 20

// PayloadCache memoizes decoded section payloads by content identity.
// Replay restores largely identical state epoch after epoch (frozen layers,
// datasets, configuration); since payloads are immutable by contract and
// every Value.Restore copies, one decode per distinct content serves the
// whole run. The cache never evicts — once the byte budget is reached, new
// content simply stops being cached. That keeps Contains answers stable,
// which GetSections relies on when it skips loading content the cache has
// promised to serve (an evicting cache could break that promise between the
// skip decision and the decode).
type PayloadCache struct {
	mu   sync.Mutex
	cap  int64
	size int64
	m    map[ckptfmt.Hash]cachedPayload
	// seen implements two-touch admission: content is cached only on its
	// second appearance, so a stream of never-repeating checkpoints (a
	// fully mutating model) doesn't pin one-shot payloads in memory.
	seen map[ckptfmt.Hash]struct{}

	hits   int64
	misses int64
	admits int64

	mHits   *obs.Counter
	mMisses *obs.Counter
	mAdmits *obs.Counter
}

// PayloadCacheStats is a consistent snapshot of a cache's accounting.
type PayloadCacheStats struct {
	CapBytes  int64 `json:"cap_bytes"`
	SizeBytes int64 `json:"size_bytes"`
	Entries   int   `json:"entries"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Admits    int64 `json:"admits"`
}

// Stats returns a snapshot taken under the cache lock, so the counters are
// mutually consistent. Zero-valued for a nil cache.
func (c *PayloadCache) Stats() PayloadCacheStats {
	if c == nil {
		return PayloadCacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return PayloadCacheStats{
		CapBytes:  c.cap,
		SizeBytes: c.size,
		Entries:   len(c.m),
		Hits:      c.hits,
		Misses:    c.misses,
		Admits:    c.admits,
	}
}

type cachedPayload struct {
	p     value.Payload
	bytes int64
}

// seenLimit caps the admission-tracking set; when exceeded it resets, which
// merely delays admission of genuinely repeating content by one touch.
const seenLimit = 1 << 20

// NewPayloadCache returns a cache bounded to capBytes
// (DefaultPayloadCacheBytes when <= 0).
func NewPayloadCache(capBytes int64) *PayloadCache {
	if capBytes <= 0 {
		capBytes = DefaultPayloadCacheBytes
	}
	return &PayloadCache{
		cap: capBytes, m: map[ckptfmt.Hash]cachedPayload{}, seen: map[ckptfmt.Hash]struct{}{},
		mHits:   obs.C(obs.MReplayPayloadCacheHits),
		mMisses: obs.C(obs.MReplayPayloadCacheMisses),
		mAdmits: obs.C(obs.MReplayPayloadCacheAdmits),
	}
}

// Contains reports whether the cache holds a payload for the identity; it
// is the `have` callback for store.GetSections, letting the store skip
// loading content the cache will serve anyway.
func (c *PayloadCache) Contains(h ckptfmt.Hash) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.m[h]
	return ok
}

func (c *PayloadCache) get(h ckptfmt.Hash) (value.Payload, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[h]
	if ok {
		c.hits++
		c.mHits.Inc()
	} else {
		c.misses++
		c.mMisses.Inc()
	}
	return e.p, ok
}

func (c *PayloadCache) put(h ckptfmt.Hash, p value.Payload, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[h]; ok {
		return
	}
	if _, ok := c.seen[h]; !ok {
		if len(c.seen) >= seenLimit {
			c.seen = map[ckptfmt.Hash]struct{}{}
		}
		c.seen[h] = struct{}{}
		return
	}
	if c.size+bytes > c.cap {
		return
	}
	c.m[h] = cachedPayload{p: p, bytes: bytes}
	c.size += bytes
	c.admits++
	c.mAdmits.Inc()
}

// DecodeSectionsCached parses sections into bundle items, serving sections
// the cache already holds without decoding (their Data may be nil when the
// store skipped loading them) and caching fresh decodes by content
// identity. A nil cache degrades to DecodeSections.
//
// Ownership: the call takes secs[i].Data — a buffer the cache hit path no
// longer needs (the cached payload references an earlier load's bytes) is
// recycled into the shared restore arena, so callers must not retain Data
// slices across the call. Decoded payloads may alias Data (lazy tensor
// views), which is exactly why only the cache-HIT path may recycle.
func DecodeSectionsCached(c *PayloadCache, secs []store.Section) ([]NamedPayload, error) {
	if c == nil {
		return DecodeSections(secs)
	}
	items := make([]NamedPayload, len(secs))
	errs := make([]error, len(secs))
	ckptfmt.ParallelDo(len(secs), func(i int) {
		var zero ckptfmt.Hash
		if secs[i].Hash != zero {
			if p, ok := c.get(secs[i].Hash); ok {
				items[i] = NamedPayload{Name: secs[i].Name, Payload: p}
				if secs[i].Data != nil {
					ckptfmt.Shared.Put(secs[i].Data)
					secs[i].Data = nil
				}
				return
			}
		}
		if secs[i].Data == nil && secs[i].RawLen > 0 {
			errs[i] = fmt.Errorf("backmat: section %q skipped by store but absent from cache", secs[i].Name)
			return
		}
		p, err := value.DecodeTaggedPayload(codec.NewReader(secs[i].Data))
		if err != nil {
			errs[i] = fmt.Errorf("backmat: decode %q: %w", secs[i].Name, err)
			return
		}
		items[i] = NamedPayload{Name: secs[i].Name, Payload: p}
		if secs[i].Hash != zero {
			c.put(secs[i].Hash, p, int64(len(secs[i].Data)))
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return items, nil
}

// BundleBytes reassembles sections into the monolithic bundle encoding —
// byte-identical to EncodeBundle of the same items. It is the bridge from
// the section-based encode path onto a legacy format-v1 store.
func BundleBytes(secs []store.Section) []byte {
	w := codec.NewWriter()
	w.Uvarint(uint64(len(secs)))
	for _, sec := range secs {
		w.String(sec.Name)
		w.RawAppend(sec.Data)
	}
	return w.Bytes()
}

// DecodeBundle parses a checkpoint bundle.
func DecodeBundle(b []byte) ([]NamedPayload, error) {
	r := codec.NewReader(b)
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	items := make([]NamedPayload, 0, n)
	for i := uint64(0); i < n; i++ {
		name, err := r.String()
		if err != nil {
			return nil, err
		}
		p, err := value.DecodeTaggedPayload(r)
		if err != nil {
			return nil, fmt.Errorf("backmat: decode %q: %w", name, err)
		}
		items = append(items, NamedPayload{Name: name, Payload: p})
	}
	return items, nil
}

// Stats aggregates materialization timings.
type Stats struct {
	Checkpoints    int
	CallerNs       int64 // training-thread blocked time across all checkpoints
	SnapshotNs     int64 // subset of CallerNs spent deep-copying state
	SerializeNs    int64 // encode time, wherever it ran
	WriteNs        int64 // store write time, wherever it ran
	BackgroundNs   int64 // work performed off the training thread
	BytesWritten   int64 // logical checkpoint payload bytes committed
	StoredBytes    int64 // bytes physically added to the store (post-dedup)
	MaxLiveWorkers int   // high-water mark of concurrent background tasks
}

type task struct {
	key      store.Key
	items    []NamedPayload
	preSecs  []store.Section // non-nil when serialization already happened (Queue)
	snapNs   int64
	computNs int64
}

// Materializer writes checkpoint bundles to a store under a chosen strategy.
// Materialize may be called only from the single training thread; background
// work is drained by Drain or Close.
type Materializer struct {
	strategy Strategy
	st       *store.Store

	mu       sync.Mutex
	stats    Stats
	firstEr  error
	live     int
	observer func(*store.Meta)

	tasks chan task
	wg    sync.WaitGroup

	// plasma assembles per-object handoffs back into bundles keyed by
	// checkpoint.
	plasmaMu      sync.Mutex
	plasmaPending map[store.Key]*plasmaBundle
}

type plasmaBundle struct {
	items    []NamedPayload
	expect   int
	snapNs   int64
	computNs int64
}

// inFlight bounds queued background work; the paper reports "never more than
// two live children", which this backpressure reproduces.
const inFlight = 2

// New constructs a materializer over st.
func New(st *store.Store, strategy Strategy) *Materializer {
	m := &Materializer{
		strategy:      strategy,
		st:            st,
		tasks:         make(chan task, inFlight),
		plasmaPending: map[store.Key]*plasmaBundle{},
	}
	m.wg.Add(1)
	go m.worker()
	return m
}

// Strategy returns the configured strategy.
func (m *Materializer) Strategy() Strategy { return m.strategy }

// SetObserver registers a callback invoked (from the background worker)
// after each checkpoint commits. Adaptive checkpointing uses this to refine
// its materialization-cost estimates from observed timings.
func (m *Materializer) SetObserver(f func(*store.Meta)) {
	m.mu.Lock()
	m.observer = f
	m.mu.Unlock()
}

func (m *Materializer) worker() {
	defer m.wg.Done()
	for t := range m.tasks {
		m.mu.Lock()
		m.live++
		if m.live > m.stats.MaxLiveWorkers {
			m.stats.MaxLiveWorkers = m.live
		}
		m.mu.Unlock()

		begin := time.Now()
		m.finish(t)
		bg := time.Since(begin).Nanoseconds()

		m.mu.Lock()
		m.live--
		m.stats.BackgroundNs += bg
		m.mu.Unlock()
	}
}

// finish serializes (if needed) and writes one checkpoint.
func (m *Materializer) finish(t task) {
	secs := t.preSecs
	var serNs int64
	if secs == nil {
		s0 := time.Now()
		secs = EncodeSections(t.items)
		serNs = time.Since(s0).Nanoseconds()
	}
	w0 := time.Now()
	meta, err := m.put(t.key, secs, t.snapNs, serNs, t.computNs)
	writeNs := time.Since(w0).Nanoseconds()

	m.mu.Lock()
	if err != nil && m.firstEr == nil {
		m.firstEr = err
	}
	m.stats.SerializeNs += serNs
	m.stats.WriteNs += writeNs
	if err == nil {
		m.stats.BytesWritten += meta.Size
		m.stats.StoredBytes += meta.StoredBytes
	}
	observe := m.observer
	m.mu.Unlock()
	if err == nil && observe != nil {
		observe(meta)
	}
}

// put commits sections through the store's native write path: chunked,
// deduplicated frames on a format-v2 store, a reassembled monolithic bundle
// on a legacy v1 store.
func (m *Materializer) put(key store.Key, secs []store.Section, snapNs, serNs, computNs int64) (*store.Meta, error) {
	if m.st.Format() == store.FormatV2 {
		return m.st.PutSections(key, secs, snapNs, serNs, computNs)
	}
	return m.st.Put(key, BundleBytes(secs), snapNs, serNs, computNs)
}

// Materialize checkpoints the given values under key. computNs is the
// observed computation time of the loop execution being memoized; it is
// stored alongside for adaptive checkpointing and the benchmark harness.
// The returned duration is the time the caller (training thread) was
// blocked.
func (m *Materializer) Materialize(key store.Key, vals []NamedValue, computNs int64) time.Duration {
	begin := time.Now()

	// Snapshot on the caller: every strategy pays this (fork pays it as
	// copy-on-write page duplication; pickle-based strategies pay it as part
	// of serialization — accounted identically here for comparability).
	s0 := time.Now()
	items := make([]NamedPayload, len(vals))
	for i, nv := range vals {
		items[i] = NamedPayload{Name: nv.Name, Payload: nv.V.Snapshot()}
	}
	snapNs := time.Since(s0).Nanoseconds()

	switch m.strategy {
	case Baseline:
		// Serialize and write inline.
		e0 := time.Now()
		secs := EncodeSections(items)
		serNs := time.Since(e0).Nanoseconds()
		w0 := time.Now()
		meta, err := m.put(key, secs, snapNs, serNs, computNs)
		writeNs := time.Since(w0).Nanoseconds()
		m.mu.Lock()
		if err != nil && m.firstEr == nil {
			m.firstEr = err
		}
		m.stats.SerializeNs += serNs
		m.stats.WriteNs += writeNs
		if err == nil {
			m.stats.BytesWritten += meta.Size
			m.stats.StoredBytes += meta.StoredBytes
		}
		observe := m.observer
		m.mu.Unlock()
		if err == nil && observe != nil {
			observe(meta)
		}

	case Queue:
		// Serialize inline (the queue pickles on the sending process), write
		// in the background.
		e0 := time.Now()
		secs := EncodeSections(items)
		serNs := time.Since(e0).Nanoseconds()
		m.mu.Lock()
		m.stats.SerializeNs += serNs
		m.mu.Unlock()
		m.tasks <- task{key: key, preSecs: secs, snapNs: snapNs, computNs: computNs}

	case Plasma:
		// Hand off object by object: each put into the "object store" is a
		// separate synchronization, like plasma_client.put per array.
		m.plasmaMu.Lock()
		m.plasmaPending[key] = &plasmaBundle{expect: len(items), snapNs: snapNs, computNs: computNs}
		m.plasmaMu.Unlock()
		for _, it := range items {
			m.plasmaPut(key, it)
		}

	case Fork:
		// One handoff for the whole batched bundle; serialization and write
		// happen in the child.
		m.tasks <- task{key: key, items: items, snapNs: snapNs, computNs: computNs}
	}

	caller := time.Since(begin)
	m.mu.Lock()
	m.stats.Checkpoints++
	m.stats.CallerNs += caller.Nanoseconds()
	m.stats.SnapshotNs += snapNs
	m.mu.Unlock()
	return caller
}

func (m *Materializer) plasmaPut(key store.Key, it NamedPayload) {
	m.plasmaMu.Lock()
	pb := m.plasmaPending[key]
	pb.items = append(pb.items, it)
	done := len(pb.items) == pb.expect
	if done {
		delete(m.plasmaPending, key)
	}
	m.plasmaMu.Unlock()
	if done {
		m.tasks <- task{key: key, items: pb.items, snapNs: pb.snapNs, computNs: pb.computNs}
	}
}

// Drain blocks until all queued background work has been committed, and
// returns the first background error, if any.
func (m *Materializer) Drain() error {
	// Close-and-reopen the worker to establish a barrier.
	close(m.tasks)
	m.wg.Wait()
	m.tasks = make(chan task, inFlight)
	m.wg.Add(1)
	go m.worker()
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.firstEr
}

// Close drains background work and shuts the materializer down.
func (m *Materializer) Close() error {
	close(m.tasks)
	m.wg.Wait()
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.firstEr
}

// Stats returns a copy of the accumulated statistics.
func (m *Materializer) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// ErrClosed is returned by operations on a closed materializer.
var ErrClosed = errors.New("backmat: materializer closed")
