package codec

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"flor.dev/flor/internal/tensor"
	"flor.dev/flor/internal/xrand"
)

func TestPrimitiveRoundTrip(t *testing.T) {
	w := NewWriter()
	w.Uvarint(0)
	w.Uvarint(1 << 40)
	w.Int(-12345)
	w.Int(0)
	w.Float64(math.Pi)
	w.Float64(math.Inf(-1))
	w.Bool(true)
	w.Bool(false)
	w.String("hello, flor")
	w.String("")
	w.RawBytes([]byte{1, 2, 3})
	w.IntSlice([]int{-1, 0, 7})

	r := NewReader(w.Bytes())
	if v, _ := r.Uvarint(); v != 0 {
		t.Fatalf("uvarint = %d", v)
	}
	if v, _ := r.Uvarint(); v != 1<<40 {
		t.Fatalf("uvarint = %d", v)
	}
	if v, _ := r.Int(); v != -12345 {
		t.Fatalf("int = %d", v)
	}
	if v, _ := r.Int(); v != 0 {
		t.Fatalf("int = %d", v)
	}
	if v, _ := r.Float64(); v != math.Pi {
		t.Fatalf("float = %g", v)
	}
	if v, _ := r.Float64(); !math.IsInf(v, -1) {
		t.Fatalf("float = %g", v)
	}
	if v, _ := r.Bool(); !v {
		t.Fatal("bool = false")
	}
	if v, _ := r.Bool(); v {
		t.Fatal("bool = true")
	}
	if v, _ := r.String(); v != "hello, flor" {
		t.Fatalf("string = %q", v)
	}
	if v, _ := r.String(); v != "" {
		t.Fatalf("string = %q", v)
	}
	if v, _ := r.RawBytes(); !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Fatalf("bytes = %v", v)
	}
	s, _ := r.IntSlice()
	if len(s) != 3 || s[0] != -1 || s[2] != 7 {
		t.Fatalf("int slice = %v", s)
	}
	if r.Remaining() != 0 {
		t.Fatalf("%d bytes left over", r.Remaining())
	}
}

func TestTensorRoundTrip(t *testing.T) {
	orig := tensor.Randn(xrand.New(1), 1, 3, 4, 5)
	w := NewWriter()
	w.Tensor(orig)
	got, err := NewReader(w.Bytes()).Tensor()
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(orig, got) {
		t.Fatal("tensor round trip not identical")
	}
}

func TestScalarTensorRoundTrip(t *testing.T) {
	orig := tensor.Scalar(42.5)
	w := NewWriter()
	w.Tensor(orig)
	got, err := NewReader(w.Bytes()).Tensor()
	if err != nil {
		t.Fatal(err)
	}
	if got.Item() != 42.5 {
		t.Fatalf("scalar round trip = %g", got.Item())
	}
}

func TestTruncatedReadsFail(t *testing.T) {
	w := NewWriter()
	w.Tensor(tensor.Full(1, 10, 10))
	full := w.Bytes()
	for _, cut := range []int{0, 1, 5, len(full) / 2, len(full) - 1} {
		if _, err := NewReader(full[:cut]).Tensor(); err == nil {
			t.Fatalf("truncation at %d bytes not detected", cut)
		}
	}
}

func TestReaderErrorsOnEmpty(t *testing.T) {
	r := NewReader(nil)
	if _, err := r.Float64(); err == nil {
		t.Fatal("empty float read succeeded")
	}
	if _, err := r.Bool(); err == nil {
		t.Fatal("empty bool read succeeded")
	}
	if _, err := r.String(); err == nil {
		t.Fatal("empty string read succeeded")
	}
}

func TestBoolRejectsJunk(t *testing.T) {
	if _, err := NewReader([]byte{7}).Bool(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("junk bool error = %v, want ErrCorrupt", err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("checkpoint payload")
	framed := Frame(payload)
	got, consumed, err := Unframe(framed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload = %q", got)
	}
	if consumed != len(framed) {
		t.Fatalf("consumed %d of %d", consumed, len(framed))
	}
}

func TestFrameDetectsCorruption(t *testing.T) {
	framed := Frame([]byte("checkpoint payload"))
	for i := 1; i < len(framed); i += 3 {
		bad := append([]byte(nil), framed...)
		bad[i] ^= 0xff
		if _, _, err := Unframe(bad); err == nil {
			t.Fatalf("corruption at byte %d not detected", i)
		}
	}
}

func TestFrameDetectsTruncation(t *testing.T) {
	framed := Frame([]byte("checkpoint payload"))
	if _, _, err := Unframe(framed[:len(framed)-2]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated frame error = %v, want ErrCorrupt", err)
	}
}

func TestFramesConcatenate(t *testing.T) {
	stream := append(Frame([]byte("one")), Frame([]byte("two"))...)
	p1, n1, err := Unframe(stream)
	if err != nil || string(p1) != "one" {
		t.Fatalf("first frame: %q, %v", p1, err)
	}
	p2, _, err := Unframe(stream[n1:])
	if err != nil || string(p2) != "two" {
		t.Fatalf("second frame: %q, %v", p2, err)
	}
}

func TestCompressRoundTrip(t *testing.T) {
	data := bytes.Repeat([]byte("abcdefgh"), 1000)
	c, err := Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(c) >= len(data) {
		t.Fatalf("compressible data did not shrink: %d -> %d", len(data), len(c))
	}
	d, err := Decompress(c)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d, data) {
		t.Fatal("compression round trip mismatch")
	}
}

func TestCompressedSize(t *testing.T) {
	data := bytes.Repeat([]byte{0}, 10000)
	n, err := CompressedSize(data)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 || n >= len(data)/10 {
		t.Fatalf("compressed size %d implausible for 10000 zero bytes", n)
	}
}

func TestQuickIntRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		w := NewWriter()
		w.Int(int(v))
		got, err := NewReader(w.Bytes()).Int()
		return err == nil && got == int(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStringRoundTrip(t *testing.T) {
	f := func(s string) bool {
		w := NewWriter()
		w.String(s)
		got, err := NewReader(w.Bytes()).String()
		return err == nil && got == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFrameRoundTrip(t *testing.T) {
	f := func(payload []byte) bool {
		got, _, err := Unframe(Frame(payload))
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTensorRoundTrip(t *testing.T) {
	f := func(seed uint64, rows, cols uint8) bool {
		r := int(rows%8) + 1
		c := int(cols%8) + 1
		orig := tensor.Randn(xrand.New(seed), 1, r, c)
		w := NewWriter()
		w.Tensor(orig)
		got, err := NewReader(w.Bytes()).Tensor()
		return err == nil && tensor.Equal(orig, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitChunks(t *testing.T) {
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i)
	}
	chunks := SplitChunks(data, 256)
	if len(chunks) != 4 {
		t.Fatalf("chunk count = %d, want 4", len(chunks))
	}
	var reassembled []byte
	for i, c := range chunks {
		if i < 3 && len(c) != 256 {
			t.Fatalf("chunk %d length %d, want 256", i, len(c))
		}
		reassembled = append(reassembled, c...)
	}
	if !bytes.Equal(reassembled, data) {
		t.Fatal("chunks do not reassemble to the input")
	}
	if got := SplitChunks(nil, 256); got != nil {
		t.Fatalf("SplitChunks(nil) = %v", got)
	}
	if got := SplitChunks(data[:10], 256); len(got) != 1 || len(got[0]) != 10 {
		t.Fatalf("short input chunks = %v", got)
	}
	if got := SplitChunks(data, 0); len(got) != 1 {
		t.Fatalf("non-positive chunk size: %d chunks, want 1 undivided", len(got))
	}
}

func TestQuickSplitChunksReassemble(t *testing.T) {
	f := func(data []byte, size uint16) bool {
		chunks := SplitChunks(data, int(size%1024)+1)
		var re []byte
		for _, c := range chunks {
			re = append(re, c...)
		}
		return bytes.Equal(re, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecompressTruncatedIsCorrupt(t *testing.T) {
	payload := bytes.Repeat([]byte("flor hindsight logging "), 512)
	c, err := Compress(payload)
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation point — inside the header, mid-deflate, inside the
	// CRC/length trailer — must yield ErrCorrupt, never a short payload.
	for cut := 0; cut < len(c); cut += 1 + len(c)/97 {
		if _, err := Decompress(c[:cut]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncated at %d/%d: err = %v, want ErrCorrupt", cut, len(c), err)
		}
	}
	// A corrupted trailer (wrong digest over intact deflate data) too.
	bad := append([]byte(nil), c...)
	bad[len(bad)-5] ^= 0xff
	if _, err := Decompress(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped CRC: err = %v, want ErrCorrupt", err)
	}
	if got, err := Decompress(c); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("intact stream failed: %v", err)
	}
}

func TestTensorViewAliasesAndPutFloats(t *testing.T) {
	orig := tensor.Randn(xrand.New(3), 1, 64, 3)
	w := NewWriter()
	w.Tensor(orig)
	shape, raw, err := NewReader(w.Bytes()).TensorView()
	if err != nil {
		t.Fatal(err)
	}
	if len(shape) != 2 || shape[0] != 64 || shape[1] != 3 {
		t.Fatalf("shape = %v", shape)
	}
	if len(raw) != 8*orig.Len() {
		t.Fatalf("raw block %d bytes, want %d", len(raw), 8*orig.Len())
	}
	dst := make([]float64, orig.Len())
	PutFloats(dst, raw)
	for i, v := range orig.Data() {
		if dst[i] != v {
			t.Fatalf("element %d: %g != %g", i, dst[i], v)
		}
	}
	// The view must reject truncated payloads like Tensor does.
	if _, _, err := NewReader(w.Bytes()[:w.Len()-4]).TensorView(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated view: err = %v", err)
	}
}
