// Package codec implements the self-describing binary encoding used for
// checkpoint payloads: primitive framing, tensor encoding, CRC-32C integrity
// frames, and gzip compression helpers.
//
// The encoding plays the role that cloudpickle serialization plays in the
// paper's Flor (§5.1): it is the dominant cost of materialization, so the
// background-materialization machinery is designed around moving calls to
// this package off the training thread.
package codec

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"unsafe"

	"flor.dev/flor/internal/tensor"
)

// hostLittleEndian reports whether float64 slices already have the wire
// byte order in memory, enabling the memcpy fast paths below. The wire
// format is little-endian regardless; big-endian hosts take the per-element
// loop.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// ErrCorrupt is returned when an integrity check fails during decoding.
var ErrCorrupt = errors.New("codec: corrupt data")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Writer accumulates an encoded byte stream in memory.
type Writer struct {
	buf bytes.Buffer
}

// NewWriter returns an empty Writer.
func NewWriter() *Writer { return &Writer{} }

// Bytes returns the encoded stream.
func (w *Writer) Bytes() []byte { return w.buf.Bytes() }

// Len returns the current encoded length.
func (w *Writer) Len() int { return w.buf.Len() }

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	w.buf.Write(tmp[:n])
}

// Int appends a signed integer as a zig-zag varint.
func (w *Writer) Int(v int) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], int64(v))
	w.buf.Write(tmp[:n])
}

// Float64 appends an IEEE-754 little-endian float.
func (w *Writer) Float64(v float64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
	w.buf.Write(tmp[:])
}

// Bool appends a single byte 0/1.
func (w *Writer) Bool(v bool) {
	if v {
		w.buf.WriteByte(1)
	} else {
		w.buf.WriteByte(0)
	}
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf.WriteString(s)
}

// RawBytes appends a length-prefixed byte slice.
func (w *Writer) RawBytes(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf.Write(b)
}

// RawAppend appends bytes verbatim, with no length prefix; used to splice
// pre-encoded payloads into a stream whose framing is managed by the caller.
func (w *Writer) RawAppend(b []byte) {
	w.buf.Write(b)
}

// Tensor appends a shape-prefixed dense tensor.
func (w *Writer) Tensor(t *tensor.Tensor) {
	shape := t.Shape()
	w.Uvarint(uint64(len(shape)))
	for _, d := range shape {
		w.Uvarint(uint64(d))
	}
	data := t.Data()
	if len(data) == 0 {
		return
	}
	// Bulk-encode the float payload in one contiguous write: serialization
	// is the record phase's hottest path (the paper's dominant
	// materialization cost), so on little-endian hosts the float block is
	// written straight from memory — IEEE-754 little-endian is both the
	// in-memory and the wire representation.
	if hostLittleEndian {
		w.buf.Write(unsafe.Slice((*byte)(unsafe.Pointer(&data[0])), 8*len(data)))
		return
	}
	block := make([]byte, 8*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint64(block[8*i:], math.Float64bits(v))
	}
	w.buf.Write(block)
}

// IntSlice appends a length-prefixed slice of signed ints.
func (w *Writer) IntSlice(s []int) {
	w.Uvarint(uint64(len(s)))
	for _, v := range s {
		w.Int(v)
	}
}

// Reader decodes a byte stream produced by Writer.
type Reader struct {
	buf []byte
	off int
}

// NewReader wraps an encoded stream.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad uvarint at offset %d", ErrCorrupt, r.off)
	}
	r.off += n
	return v, nil
}

// Int reads a zig-zag varint.
func (r *Reader) Int() (int, error) {
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad varint at offset %d", ErrCorrupt, r.off)
	}
	r.off += n
	return int(v), nil
}

// Float64 reads an IEEE-754 float.
func (r *Reader) Float64() (float64, error) {
	if r.Remaining() < 8 {
		return 0, fmt.Errorf("%w: truncated float at offset %d", ErrCorrupt, r.off)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	return v, nil
}

// Bool reads a 0/1 byte.
func (r *Reader) Bool() (bool, error) {
	if r.Remaining() < 1 {
		return false, fmt.Errorf("%w: truncated bool at offset %d", ErrCorrupt, r.off)
	}
	b := r.buf[r.off]
	r.off++
	if b > 1 {
		return false, fmt.Errorf("%w: bool byte 0x%02x at offset %d", ErrCorrupt, b, r.off-1)
	}
	return b == 1, nil
}

// String reads a length-prefixed string.
func (r *Reader) String() (string, error) {
	n, err := r.Uvarint()
	if err != nil {
		return "", err
	}
	if uint64(r.Remaining()) < n {
		return "", fmt.Errorf("%w: truncated string at offset %d", ErrCorrupt, r.off)
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

// RawBytes reads a length-prefixed byte slice (copied).
func (r *Reader) RawBytes() ([]byte, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if uint64(r.Remaining()) < n {
		return nil, fmt.Errorf("%w: truncated bytes at offset %d", ErrCorrupt, r.off)
	}
	b := make([]byte, n)
	copy(b, r.buf[r.off:r.off+int(n)])
	r.off += int(n)
	return b, nil
}

// Tensor reads a shape-prefixed dense tensor.
func (r *Reader) Tensor() (*tensor.Tensor, error) {
	shape, raw, err := r.TensorView()
	if err != nil {
		return nil, err
	}
	out := tensor.New(shape...)
	PutFloats(out.Data(), raw)
	return out, nil
}

// TensorView reads a shape-prefixed dense tensor without materializing it.
// The returned raw block aliases the reader's buffer and holds the wire
// encoding (8 little-endian IEEE-754 bytes per element); it stays valid only
// as long as the underlying buffer does. PutFloats copies such a block onto a
// float64 slice — together they form the zero-copy restore path, which
// defers (or skips) building an intermediate tensor and instead copies
// checkpoint bytes straight into the live destination.
func (r *Reader) TensorView() (shape []int, raw []byte, err error) {
	dims, err := r.Uvarint()
	if err != nil {
		return nil, nil, err
	}
	if dims > 8 {
		return nil, nil, fmt.Errorf("%w: implausible tensor rank %d", ErrCorrupt, dims)
	}
	shape = make([]int, dims)
	n := 1
	for i := range shape {
		d, err := r.Uvarint()
		if err != nil {
			return nil, nil, err
		}
		shape[i] = int(d)
		n *= int(d)
	}
	if r.Remaining() < 8*n {
		return nil, nil, fmt.Errorf("%w: truncated tensor payload at offset %d", ErrCorrupt, r.off)
	}
	raw = r.buf[r.off : r.off+8*n]
	r.off += 8 * n
	return shape, raw, nil
}

// PutFloats copies a wire-format float block (8 little-endian bytes per
// element) onto dst, whose length must match the block's element count. On
// little-endian hosts this is a single memcpy into dst's backing array; the
// destination side of the unsafe conversion is always 8-byte aligned, so the
// block itself may sit at any offset (a frame decoded mid-buffer, an mmap'd
// pack page). Big-endian hosts take the per-element loop.
func PutFloats(dst []float64, raw []byte) {
	if len(raw) != 8*len(dst) {
		panic(fmt.Sprintf("codec: PutFloats length mismatch: %d raw bytes onto %d floats", len(raw), len(dst)))
	}
	if len(dst) == 0 {
		return
	}
	if hostLittleEndian {
		copy(unsafe.Slice((*byte)(unsafe.Pointer(&dst[0])), 8*len(dst)), raw)
		return
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
}

// IntSlice reads a length-prefixed int slice.
func (r *Reader) IntSlice() ([]int, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Remaining()) {
		return nil, fmt.Errorf("%w: implausible int slice length %d", ErrCorrupt, n)
	}
	out := make([]int, n)
	for i := range out {
		v, err := r.Int()
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Frame wraps payload with a length prefix and a trailing CRC-32C so torn or
// corrupted writes are detected at read time.
func Frame(payload []byte) []byte {
	out := make([]byte, 0, len(payload)+13)
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(payload)))
	out = append(out, tmp[:n]...)
	out = append(out, payload...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(payload, castagnoli))
	return append(out, crc[:]...)
}

// Unframe verifies and strips a Frame, returning the payload and the number
// of bytes consumed from b.
func Unframe(b []byte) (payload []byte, consumed int, err error) {
	length, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, 0, fmt.Errorf("%w: bad frame length", ErrCorrupt)
	}
	total := n + int(length) + 4
	if len(b) < total {
		return nil, 0, fmt.Errorf("%w: truncated frame (need %d bytes, have %d)", ErrCorrupt, total, len(b))
	}
	payload = b[n : n+int(length)]
	want := binary.LittleEndian.Uint32(b[n+int(length):])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, 0, fmt.Errorf("%w: frame CRC mismatch (got %08x want %08x)", ErrCorrupt, got, want)
	}
	return payload, total, nil
}

// SplitChunks cuts b into consecutive chunks of at most chunkSize bytes.
// The returned slices alias b. A nil or empty input yields no chunks; format
// v2 uses this to cut large tensor payloads into independently encodable
// frames.
func SplitChunks(b []byte, chunkSize int) [][]byte {
	if chunkSize <= 0 || len(b) == 0 {
		if len(b) == 0 {
			return nil
		}
		return [][]byte{b}
	}
	out := make([][]byte, 0, (len(b)+chunkSize-1)/chunkSize)
	for len(b) > chunkSize {
		out = append(out, b[:chunkSize])
		b = b[chunkSize:]
	}
	return append(out, b)
}

// entropySampleLimit bounds how many bytes SampleEntropy inspects; a 64 KiB
// prefix is representative enough to classify a chunk as compressible.
const entropySampleLimit = 64 << 10

// SampleEntropy estimates the Shannon entropy of b in bits per byte from a
// bounded prefix sample. Already-compressed or high-precision numeric data
// scores near 8.0; zero-filled or textual data scores far lower. Format v2's
// style heuristic uses this to skip deflate where it cannot pay for itself.
func SampleEntropy(b []byte) float64 {
	if len(b) == 0 {
		return 0
	}
	sample := b
	if len(sample) > entropySampleLimit {
		sample = sample[:entropySampleLimit]
	}
	var hist [256]int
	for _, c := range sample {
		hist[c]++
	}
	n := float64(len(sample))
	h := 0.0
	for _, c := range hist {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

// Compress gzips b at the default compression level.
func Compress(b []byte) ([]byte, error) {
	var out bytes.Buffer
	zw := gzip.NewWriter(&out)
	if _, err := zw.Write(b); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// Decompress gunzips b. Any malformed input — a bad header, a stream
// truncated mid-deflate, or a missing/mismatched CRC trailer — surfaces
// ErrCorrupt rather than a silently short payload: the read drains to the
// stream's end so gzip's own digest check always runs before bytes are
// returned.
func Decompress(b []byte) ([]byte, error) {
	zr, err := gzip.NewReader(bytes.NewReader(b))
	if err != nil {
		return nil, fmt.Errorf("%w: gzip header: %v", ErrCorrupt, err)
	}
	defer zr.Close()
	out, err := io.ReadAll(zr)
	if err != nil {
		// io.ReadAll only stops early on a real error: truncation surfaces
		// io.ErrUnexpectedEOF and a drained-but-wrong digest surfaces
		// gzip.ErrChecksum. Either way the bytes cannot be trusted.
		return nil, fmt.Errorf("%w: gzip stream: %v", ErrCorrupt, err)
	}
	return out, nil
}

// CompressedSize returns len(Compress(b)); used for the paper's Table 4
// storage accounting, which reports gzip-compressed checkpoint sizes.
func CompressedSize(b []byte) (int, error) {
	c, err := Compress(b)
	if err != nil {
		return 0, err
	}
	return len(c), nil
}
