// Package analyze implements Flor's static side-effect analysis for lean
// checkpointing (paper §5.2.1).
//
// For each loop it computes a changeset — the set of variables whose state a
// Loop End Checkpoint must capture — by interpreting every statement in the
// loop's subtree against the six rule templates of Table 1:
//
//	rule 0:  v1..vn = u1..um  with some vi already in the changeset → refuse
//	rule 1:  v1..vn = obj.method(args)                              → {obj, v1..vn}
//	rule 2:  v1..vn = func(args)                                    → {v1..vn}
//	rule 3:  v1..vn = u1..um                                        → {v1..vn}
//	rule 4:  obj.method(args)                                       → {obj}
//	rule 5:  func(args)                                             → refuse
//
// Rules are sorted in descending precedence; at most one rule activates per
// statement; statements activating no rule are ignored. A refusal (rules 0
// or 5) means the loop's side-effects cannot be bounded statically, so Flor
// leaves it uninstrumented — it will be fully re-executed on replay.
//
// Two later passes refine the raw changeset: filtering removes loop-scoped
// variables (defined inside the loop body, assumed dead after it), and
// runtime augmentation adds side-effects that only library knowledge
// reveals — a PyTorch-style optimizer mutates its model, and a scheduler
// mutates its optimizer.
package analyze

import (
	"fmt"

	"flor.dev/flor/internal/script"
	"flor.dev/flor/internal/value"
)

// Rule identifies which Table 1 template a statement activated.
type Rule int

// The rules of Table 1, plus RuleNone for ignored statements.
const (
	RuleNone Rule = iota - 1
	Rule0
	Rule1
	Rule2
	Rule3
	Rule4
	Rule5
)

// String renders the rule number.
func (r Rule) String() string {
	if r == RuleNone {
		return "none"
	}
	return fmt.Sprintf("rule %d", int(r))
}

// LoopAnalysis is the outcome of analyzing one loop.
type LoopAnalysis struct {
	LoopID string
	// Memoizable reports whether the loop may be enclosed in a SkipBlock.
	Memoizable bool
	// Refusal explains a non-memoizable outcome (which statement activated
	// rule 0 or rule 5).
	Refusal string
	// Raw is the changeset before filtering, in first-add order.
	Raw []string
	// Changeset is the final static changeset after loop-scoped filtering.
	Changeset []string
	// Filtered lists the loop-scoped variables removed by the filter.
	Filtered []string
}

// Classify returns the Table 1 rule a statement pattern activates, given the
// current changeset (rule 0 depends on it).
func Classify(pat script.Pattern, inChangeset func(string) bool) Rule {
	isAssign := len(pat.Targets) > 0
	if isAssign {
		for _, t := range pat.Targets {
			if inChangeset(t) {
				return Rule0
			}
		}
		switch {
		case pat.IsCall && pat.Receiver != "":
			return Rule1
		case pat.IsCall:
			return Rule2
		default:
			return Rule3
		}
	}
	if pat.IsCall {
		if pat.Receiver != "" {
			return Rule4
		}
		return Rule5
	}
	return RuleNone
}

// Delta returns the changeset delta contributed by a statement under the
// given rule.
func Delta(pat script.Pattern, r Rule) []string {
	switch r {
	case Rule1:
		return append([]string{pat.Receiver}, pat.Targets...)
	case Rule2, Rule3:
		return pat.Targets
	case Rule4:
		return []string{pat.Receiver}
	default:
		return nil
	}
}

// AnalyzeLoop computes the changeset for loop l of program p. The whole loop
// subtree is scanned in program order; nested loops contribute their body
// statements and their iteration variables.
func AnalyzeLoop(p *script.Program, l *script.Loop) *LoopAnalysis {
	a := &LoopAnalysis{LoopID: l.ID, Memoizable: true}
	set := map[string]bool{}
	add := func(names []string) {
		for _, n := range names {
			if !set[n] {
				set[n] = true
				a.Raw = append(a.Raw, n)
			}
		}
	}
	var scan func(stmts []script.Stmt) bool
	scan = func(stmts []script.Stmt) bool {
		for i := range stmts {
			s := &stmts[i]
			switch {
			case s.IsLog:
				// Log statements are side-effect-free by contract.
				continue
			case s.Loop != nil:
				// The nested loop's iteration variable is an implicit
				// assignment; its body joins the enclosing scan.
				add([]string{s.Loop.IterVar})
				if !scan(s.Loop.Body) {
					return false
				}
			default:
				r := Classify(s.Pat, func(n string) bool { return set[n] })
				switch r {
				case Rule0:
					a.Memoizable = false
					a.Refusal = fmt.Sprintf("%s: reassignment to changed variable (%s)", s.Render(), r)
					return false
				case Rule5:
					a.Memoizable = false
					a.Refusal = fmt.Sprintf("%s: side-effecting function call (%s)", s.Render(), r)
					return false
				default:
					add(Delta(s.Pat, r))
				}
			}
		}
		return true
	}
	// The loop's own iteration variable is also implicitly assigned.
	add([]string{l.IterVar})
	if !scan(l.Body) {
		a.Raw = nil
		return a
	}

	// Filtering: remove loop-scoped variables (those not defined before the
	// loop). The paper assumes such variables are local to the body and not
	// read after the loop; deferred checks (§5.2.2) backstop the assumption.
	before := p.DefinedBefore(l)
	for _, n := range a.Raw {
		if before[n] {
			a.Changeset = append(a.Changeset, n)
		} else {
			a.Filtered = append(a.Filtered, n)
		}
	}
	return a
}

// AnalyzeProgram analyzes every loop of the program, returning results
// keyed by loop ID.
func AnalyzeProgram(p *script.Program) map[string]*LoopAnalysis {
	out := map[string]*LoopAnalysis{}
	for _, l := range p.Loops() {
		out[l.ID] = AnalyzeLoop(p, l)
	}
	return out
}

// Augment applies runtime changeset augmentation (paper §5.2.1, final step):
// if the changeset contains an optimizer, the model it mutates is added; if
// it contains an LR scheduler, the optimizer it mutates is added. The
// process iterates to a fixpoint so scheduler → optimizer → model chains
// resolve. Names absent from the environment are left untouched (the
// variable may be assigned for the first time inside the loop).
func Augment(changeset []string, env *script.Env) []string {
	out := append([]string(nil), changeset...)
	in := map[string]bool{}
	for _, n := range out {
		in[n] = true
	}
	for {
		added := false
		for _, n := range out {
			v, ok := env.Get(n)
			if !ok {
				continue
			}
			switch b := v.(type) {
			case *value.Optimizer:
				if mn, ok := findModelVar(env, b); ok && !in[mn] {
					out = append(out, mn)
					in[mn] = true
					added = true
				}
			case *value.Scheduler:
				if on, ok := findOptimizerVar(env, b); ok && !in[on] {
					out = append(out, on)
					in[on] = true
					added = true
				}
			}
		}
		if !added {
			return out
		}
	}
}

func findModelVar(env *script.Env, o *value.Optimizer) (string, bool) {
	target := o.O.Model()
	for _, n := range env.Names() {
		if mv, ok := env.MustGet(n).(*value.Model); ok && mv.M == target {
			return n, true
		}
	}
	return "", false
}

func findOptimizerVar(env *script.Env, s *value.Scheduler) (string, bool) {
	target := s.S.Optimizer()
	for _, n := range env.Names() {
		if ov, ok := env.MustGet(n).(*value.Optimizer); ok && ov.O == target {
			return n, true
		}
	}
	return "", false
}
