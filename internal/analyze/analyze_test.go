package analyze

import (
	"strings"
	"testing"

	"flor.dev/flor/internal/nn"
	"flor.dev/flor/internal/opt"
	"flor.dev/flor/internal/script"
	"flor.dev/flor/internal/value"
	"flor.dev/flor/internal/xrand"
)

func noop(*script.Env) error { return nil }

// figure6Program reproduces the paper's Figure 6 training script:
//
//	net = Resnet101()
//	optimizer = SGD(net.parameters())
//	lr_sched = LR_Scheduler(optimizer)
//	for epoch in range(E):              # main loop (vanilla Python)
//	    for batch in loader:            # nested training loop (PyTorch)
//	        preds = net(batch)          # rule 2 -> {preds}
//	        avg_loss = loss_fn(preds)   # rule 2 -> {avg_loss}
//	        avg_loss.backward()         # rule 4 -> {avg_loss}
//	        optimizer.step()            # rule 4 -> {optimizer}
//	    test(net, test_loader)          # rule 5 -> refuse main loop
//	    print(accuracy)                 # rule 5
//	    lr_sched.step()                 # rule 4
func figure6Program() *script.Program {
	train := &script.Loop{
		ID:      "train",
		IterVar: "batch",
		Iters:   10,
		Body: []script.Stmt{
			script.AssignFunc([]string{"preds"}, "net", []string{"batch"}, noop),
			script.AssignFunc([]string{"avg_loss"}, "loss_fn", []string{"preds", "target"}, noop),
			script.ExprMethod("avg_loss", "backward", nil, noop),
			script.ExprMethod("optimizer", "step", nil, noop),
		},
	}
	return &script.Program{
		Name: "figure6",
		Setup: []script.Stmt{
			script.AssignFunc([]string{"net"}, "Resnet101", nil, noop),
			script.AssignFunc([]string{"optimizer"}, "SGD", []string{"net"}, noop),
			script.AssignFunc([]string{"lr_sched"}, "LR_Scheduler", []string{"optimizer"}, noop),
		},
		Main: &script.Loop{
			ID:      "main",
			IterVar: "epoch",
			Iters:   5,
			Body: []script.Stmt{
				script.LoopStmt(train),
				script.ExprFunc("test", []string{"net", "test_loader"}, noop),
				script.ExprFunc("print", []string{"accuracy"}, noop),
				script.ExprMethod("lr_sched", "step", nil, noop),
			},
		},
	}
}

func TestClassifyRules(t *testing.T) {
	inSet := func(s string) bool { return s == "hot" }
	cases := []struct {
		name string
		pat  script.Pattern
		want Rule
	}{
		{"rule1 method assign", script.Pattern{Targets: []string{"v"}, Receiver: "obj", Func: "m", IsCall: true}, Rule1},
		{"rule2 func assign", script.Pattern{Targets: []string{"v"}, Func: "f", IsCall: true}, Rule2},
		{"rule3 plain assign", script.Pattern{Targets: []string{"v"}}, Rule3},
		{"rule4 method expr", script.Pattern{Receiver: "obj", Func: "m", IsCall: true}, Rule4},
		{"rule5 func expr", script.Pattern{Func: "f", IsCall: true}, Rule5},
		{"rule0 overrides rule1", script.Pattern{Targets: []string{"hot"}, Receiver: "obj", Func: "m", IsCall: true}, Rule0},
		{"rule0 overrides rule3", script.Pattern{Targets: []string{"x", "hot"}}, Rule0},
		{"no rule", script.Pattern{}, RuleNone},
	}
	for _, c := range cases {
		if got := Classify(c.pat, inSet); got != c.want {
			t.Fatalf("%s: Classify = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestDelta(t *testing.T) {
	pat := script.Pattern{Targets: []string{"a", "b"}, Receiver: "obj", Func: "m", IsCall: true}
	d := Delta(pat, Rule1)
	if len(d) != 3 || d[0] != "obj" || d[1] != "a" || d[2] != "b" {
		t.Fatalf("rule 1 delta = %v", d)
	}
	if d := Delta(script.Pattern{Receiver: "obj", IsCall: true}, Rule4); len(d) != 1 || d[0] != "obj" {
		t.Fatalf("rule 4 delta = %v", d)
	}
	if d := Delta(pat, Rule5); d != nil {
		t.Fatalf("rule 5 delta = %v, want nil", d)
	}
}

func TestFigure6TrainLoopChangeset(t *testing.T) {
	p := figure6Program()
	train, _ := p.FindLoop("train")
	a := AnalyzeLoop(p, train)
	if !a.Memoizable {
		t.Fatalf("train loop refused: %s", a.Refusal)
	}
	// Raw changeset per the paper: batch, preds, avg_loss, optimizer.
	wantRaw := []string{"batch", "preds", "avg_loss", "optimizer"}
	if len(a.Raw) != len(wantRaw) {
		t.Fatalf("raw changeset = %v, want %v", a.Raw, wantRaw)
	}
	for i := range wantRaw {
		if a.Raw[i] != wantRaw[i] {
			t.Fatalf("raw changeset = %v, want %v", a.Raw, wantRaw)
		}
	}
	// After loop-scoped filtering only optimizer remains.
	if len(a.Changeset) != 1 || a.Changeset[0] != "optimizer" {
		t.Fatalf("filtered changeset = %v, want [optimizer]", a.Changeset)
	}
	wantFiltered := map[string]bool{"batch": true, "preds": true, "avg_loss": true}
	for _, f := range a.Filtered {
		if !wantFiltered[f] {
			t.Fatalf("unexpected filtered variable %q", f)
		}
	}
	if len(a.Filtered) != 3 {
		t.Fatalf("filtered = %v", a.Filtered)
	}
}

func TestFigure6MainLoopRefused(t *testing.T) {
	p := figure6Program()
	a := AnalyzeLoop(p, p.Main)
	if a.Memoizable {
		t.Fatal("main loop with rule-5 statements should be refused")
	}
	if !strings.Contains(a.Refusal, "test(net,test_loader)") {
		t.Fatalf("refusal should name the rule-5 statement: %q", a.Refusal)
	}
}

func TestFigure6Augmentation(t *testing.T) {
	// Build a live environment matching the Figure 6 setup, then augment.
	env := script.NewEnv()
	model := nn.NewLinear("fc", xrand.New(1), 4, 2)
	optimizer := opt.NewSGD(model, 0.1, 0.9, 0)
	sched := opt.NewStepLR(optimizer, 1, 0.5)
	env.Set("net", &value.Model{M: model})
	env.Set("optimizer", &value.Optimizer{O: optimizer})
	env.Set("lr_sched", &value.Scheduler{S: sched})

	got := Augment([]string{"optimizer"}, env)
	if len(got) != 2 || got[0] != "optimizer" || got[1] != "net" {
		t.Fatalf("Augment = %v, want [optimizer net]", got)
	}
}

func TestAugmentSchedulerChain(t *testing.T) {
	env := script.NewEnv()
	model := nn.NewLinear("fc", xrand.New(1), 4, 2)
	optimizer := opt.NewAdamW(model, 0.1, 0)
	sched := opt.NewCosineLR(optimizer, 10)
	env.Set("net", &value.Model{M: model})
	env.Set("optimizer", &value.Optimizer{O: optimizer})
	env.Set("lr_sched", &value.Scheduler{S: sched})

	// scheduler -> optimizer -> model resolves transitively.
	got := Augment([]string{"lr_sched"}, env)
	want := map[string]bool{"lr_sched": true, "optimizer": true, "net": true}
	if len(got) != 3 {
		t.Fatalf("Augment = %v", got)
	}
	for _, n := range got {
		if !want[n] {
			t.Fatalf("Augment added unexpected %q", n)
		}
	}
}

func TestAugmentIdempotent(t *testing.T) {
	env := script.NewEnv()
	model := nn.NewLinear("fc", xrand.New(1), 4, 2)
	optimizer := opt.NewSGD(model, 0.1, 0, 0)
	env.Set("net", &value.Model{M: model})
	env.Set("optimizer", &value.Optimizer{O: optimizer})
	once := Augment([]string{"optimizer"}, env)
	twice := Augment(once, env)
	if len(once) != len(twice) {
		t.Fatalf("Augment not idempotent: %v -> %v", once, twice)
	}
}

func TestAugmentIgnoresUnknownNames(t *testing.T) {
	env := script.NewEnv()
	got := Augment([]string{"ghost"}, env)
	if len(got) != 1 || got[0] != "ghost" {
		t.Fatalf("Augment = %v", got)
	}
}

func TestAugmentDistinguishesMultipleOptimizers(t *testing.T) {
	// Two optimizers over two models: each pulls in only its own model.
	env := script.NewEnv()
	m1 := nn.NewLinear("a", xrand.New(1), 2, 2)
	m2 := nn.NewLinear("b", xrand.New(2), 2, 2)
	env.Set("net1", &value.Model{M: m1})
	env.Set("net2", &value.Model{M: m2})
	env.Set("opt1", &value.Optimizer{O: opt.NewSGD(m1, 0.1, 0, 0)})
	env.Set("opt2", &value.Optimizer{O: opt.NewSGD(m2, 0.1, 0, 0)})
	got := Augment([]string{"opt2"}, env)
	if len(got) != 2 || got[1] != "net2" {
		t.Fatalf("Augment = %v, want [opt2 net2]", got)
	}
}

func TestRule0RefusesLoop(t *testing.T) {
	l := &script.Loop{
		ID: "bad", IterVar: "i", Iters: 3,
		Body: []script.Stmt{
			script.AssignFunc([]string{"x"}, "f", nil, noop),
			script.AssignExpr([]string{"x"}, []string{"y"}, noop), // reassigns changed x
		},
	}
	p := &script.Program{Name: "p", Main: &script.Loop{ID: "main", IterVar: "e", Iters: 1,
		Body: []script.Stmt{script.LoopStmt(l)}}}
	a := AnalyzeLoop(p, l)
	if a.Memoizable {
		t.Fatal("rule 0 violation not refused")
	}
	if !strings.Contains(a.Refusal, "reassignment") {
		t.Fatalf("refusal = %q", a.Refusal)
	}
}

func TestRefusalIsMonotone(t *testing.T) {
	// Property: adding a refused statement to any memoizable loop makes it
	// refused (no ordering can rescue it).
	base := []script.Stmt{
		script.AssignFunc([]string{"v"}, "f", nil, noop),
		script.ExprMethod("obj", "m", nil, noop),
	}
	poison := script.ExprFunc("sideeffect", nil, noop)
	for pos := 0; pos <= len(base); pos++ {
		body := make([]script.Stmt, 0, len(base)+1)
		body = append(body, base[:pos]...)
		body = append(body, poison)
		body = append(body, base[pos:]...)
		l := &script.Loop{ID: "l", IterVar: "i", Iters: 1, Body: body}
		p := &script.Program{Name: "p", Main: &script.Loop{ID: "main", IterVar: "e", Iters: 1,
			Body: []script.Stmt{script.LoopStmt(l)}}}
		if AnalyzeLoop(p, l).Memoizable {
			t.Fatalf("loop with rule-5 statement at position %d not refused", pos)
		}
	}
}

func TestNestedLoopSideEffectsJoinOuterChangeset(t *testing.T) {
	inner := &script.Loop{
		ID: "inner", IterVar: "j", Iters: 2,
		Body: []script.Stmt{script.ExprMethod("acc", "update", nil, noop)},
	}
	outer := &script.Loop{
		ID: "outer", IterVar: "i", Iters: 2,
		Body: []script.Stmt{script.LoopStmt(inner)},
	}
	p := &script.Program{
		Name: "p",
		Setup: []script.Stmt{
			script.AssignFunc([]string{"acc"}, "Accumulator", nil, noop),
		},
		Main: &script.Loop{ID: "main", IterVar: "e", Iters: 1, Body: []script.Stmt{script.LoopStmt(outer)}},
	}
	a := AnalyzeLoop(p, outer)
	if !a.Memoizable {
		t.Fatalf("refused: %s", a.Refusal)
	}
	if len(a.Changeset) != 1 || a.Changeset[0] != "acc" {
		t.Fatalf("changeset = %v, want [acc]", a.Changeset)
	}
	// The inner loop's iter var j must have been filtered as loop-scoped.
	found := false
	for _, f := range a.Filtered {
		if f == "j" {
			found = true
		}
	}
	if !found {
		t.Fatalf("inner iter var not filtered: %v", a.Filtered)
	}
}

func TestAnalyzeProgramCoversAllLoops(t *testing.T) {
	p := figure6Program()
	results := AnalyzeProgram(p)
	if len(results) != 2 {
		t.Fatalf("analyzed %d loops, want 2", len(results))
	}
	if results["main"].Memoizable || !results["train"].Memoizable {
		t.Fatal("main should refuse, train should memoize")
	}
}

func TestDeterministicAnalysis(t *testing.T) {
	p := figure6Program()
	train, _ := p.FindLoop("train")
	a := AnalyzeLoop(p, train)
	b := AnalyzeLoop(p, train)
	if strings.Join(a.Changeset, ",") != strings.Join(b.Changeset, ",") {
		t.Fatal("analysis not deterministic")
	}
	if strings.Join(a.Raw, ",") != strings.Join(b.Raw, ",") {
		t.Fatal("raw changeset not deterministic")
	}
}

func TestLogStatementsIgnoredByAnalysis(t *testing.T) {
	l := &script.Loop{
		ID: "l", IterVar: "i", Iters: 1,
		Body: []script.Stmt{
			script.LogStmt("loss", func(e *script.Env) (string, error) { return "", nil }),
			script.ExprMethod("optimizer", "step", nil, noop),
		},
	}
	p := &script.Program{
		Name:  "p",
		Setup: []script.Stmt{script.AssignFunc([]string{"optimizer"}, "SGD", nil, noop)},
		Main:  &script.Loop{ID: "main", IterVar: "e", Iters: 1, Body: []script.Stmt{script.LoopStmt(l)}},
	}
	a := AnalyzeLoop(p, l)
	if !a.Memoizable || len(a.Changeset) != 1 || a.Changeset[0] != "optimizer" {
		t.Fatalf("analysis with log stmt: memoizable=%v changeset=%v", a.Memoizable, a.Changeset)
	}
}
