// Package script defines the training-program intermediate representation
// that stands in for Python source code in this reproduction.
//
// Flor's analyses never interpret Python semantics: they operate on
// (a) statement *patterns* — the shapes of Table 1 (assignments, method
// calls, function calls), (b) loop structure, and (c) the position of log
// statements. The IR exposes exactly those three things. Every statement
// carries a Pattern for static analysis plus a Go closure for its actual
// effect on the environment; loops carry stable IDs; log statements are the
// probe points of hindsight logging.
//
// A Program's structure (not its closures) can be serialized; record stores
// it as "a copy of the code" (paper §3.1) and replay diffs it against the
// new version to locate probes (§3.2).
package script

import (
	"fmt"
	"strings"
	"time"

	"flor.dev/flor/internal/value"
)

// Env is a program environment: an ordered map from variable names to live
// values. Order is insertion order, kept deterministic for checkpoint
// encoding and tests.
type Env struct {
	vars  map[string]value.Value
	order []string
}

// NewEnv returns an empty environment.
func NewEnv() *Env {
	return &Env{vars: map[string]value.Value{}}
}

// Set binds name to v, preserving first-bind order.
func (e *Env) Set(name string, v value.Value) {
	if _, ok := e.vars[name]; !ok {
		e.order = append(e.order, name)
	}
	e.vars[name] = v
}

// Get returns the value bound to name.
func (e *Env) Get(name string) (value.Value, bool) {
	v, ok := e.vars[name]
	return v, ok
}

// MustGet returns the value bound to name, panicking on absence (programs
// reference variables they defined; absence is a program bug).
func (e *Env) MustGet(name string) value.Value {
	v, ok := e.vars[name]
	if !ok {
		panic(fmt.Sprintf("script: undefined variable %q", name))
	}
	return v
}

// Int returns the int value bound to name.
func (e *Env) Int(name string) int {
	return e.MustGet(name).(*value.Int).V
}

// SetInt binds name to an integer, reusing the existing box when present.
func (e *Env) SetInt(name string, v int) {
	if b, ok := e.vars[name].(*value.Int); ok {
		b.V = v
		return
	}
	e.Set(name, &value.Int{V: v})
}

// Float returns the float value bound to name.
func (e *Env) Float(name string) float64 {
	return e.MustGet(name).(*value.Float).V
}

// SetFloat binds name to a float, reusing the existing box when present.
func (e *Env) SetFloat(name string, v float64) {
	if b, ok := e.vars[name].(*value.Float); ok {
		b.V = v
		return
	}
	e.Set(name, &value.Float{V: v})
}

// Names returns all bound names in first-bind order.
func (e *Env) Names() []string {
	out := make([]string, len(e.order))
	copy(out, e.order)
	return out
}

// Pattern is the statically visible shape of a statement, mirroring the
// paper's Table 1 templates.
type Pattern struct {
	Targets  []string // assignment targets v1..vn (empty for expression statements)
	Receiver string   // obj for obj.method(...) forms; empty otherwise
	Func     string   // function or method name; empty for pure assignments
	Args     []string // argument variable names (for rendering and tests)
	IsCall   bool     // whether the right-hand side is a call
}

// Stmt is one program statement. Exactly one of the following is set:
// a Pattern with Do (ordinary statement), a LogLabel with EvalLog (log
// statement), or a Loop (nested loop).
type Stmt struct {
	Pat     Pattern
	Do      func(env *Env) error
	IsLog   bool
	Label   string // log label; log identity for source diffing
	EvalLog func(env *Env) (string, error)
	Loop    *Loop
}

// Loop is a counted loop with a stable static identifier.
type Loop struct {
	ID      string
	IterVar string
	Iters   int
	Body    []Stmt
}

// Program is a training script: setup, one main loop, and a tail.
type Program struct {
	Name  string
	Setup []Stmt
	Main  *Loop
	Tail  []Stmt
}

// ---------- statement constructors ----------

// AssignMethod builds "t1,...,tn = recv.fn(args...)" (Table 1, rule 1).
func AssignMethod(targets []string, recv, fn string, args []string, do func(*Env) error) Stmt {
	return Stmt{Pat: Pattern{Targets: targets, Receiver: recv, Func: fn, Args: args, IsCall: true}, Do: do}
}

// AssignFunc builds "t1,...,tn = fn(args...)" (Table 1, rule 2).
func AssignFunc(targets []string, fn string, args []string, do func(*Env) error) Stmt {
	return Stmt{Pat: Pattern{Targets: targets, Func: fn, Args: args, IsCall: true}, Do: do}
}

// AssignExpr builds "t1,...,tn = <expr>" (Table 1, rule 3).
func AssignExpr(targets []string, args []string, do func(*Env) error) Stmt {
	return Stmt{Pat: Pattern{Targets: targets, Args: args}, Do: do}
}

// ExprMethod builds "recv.fn(args...)" (Table 1, rule 4).
func ExprMethod(recv, fn string, args []string, do func(*Env) error) Stmt {
	return Stmt{Pat: Pattern{Receiver: recv, Func: fn, Args: args, IsCall: true}, Do: do}
}

// ExprFunc builds "fn(args...)" (Table 1, rule 5 — side-effects beyond
// analysis scope; a loop containing one is never instrumented).
func ExprFunc(fn string, args []string, do func(*Env) error) Stmt {
	return Stmt{Pat: Pattern{Func: fn, Args: args, IsCall: true}, Do: do}
}

// LogStmt builds a log statement: a side-effect-free expression whose result
// is appended to the run log. Adding one to a recorded program in hindsight
// is a probe.
func LogStmt(label string, eval func(*Env) (string, error)) Stmt {
	return Stmt{IsLog: true, Label: label, EvalLog: eval}
}

// LoopStmt embeds a nested loop.
func LoopStmt(l *Loop) Stmt { return Stmt{Loop: l} }

// Render returns the statement's canonical one-line source form; used for
// program structure serialization and diffing.
func (s *Stmt) Render() string {
	switch {
	case s.IsLog:
		return "log " + s.Label
	case s.Loop != nil:
		return fmt.Sprintf("loop %s %s:%d", s.Loop.ID, s.Loop.IterVar, s.Loop.Iters)
	default:
		var b strings.Builder
		if len(s.Pat.Targets) > 0 {
			b.WriteString(strings.Join(s.Pat.Targets, ","))
			b.WriteString(" = ")
		}
		if s.Pat.Receiver != "" {
			b.WriteString(s.Pat.Receiver)
			b.WriteString(".")
		}
		if s.Pat.Func != "" {
			b.WriteString(s.Pat.Func)
			b.WriteString("(")
			b.WriteString(strings.Join(s.Pat.Args, ","))
			b.WriteString(")")
		} else {
			b.WriteString("expr(")
			b.WriteString(strings.Join(s.Pat.Args, ","))
			b.WriteString(")")
		}
		return b.String()
	}
}

// ---------- execution ----------

// Ctx carries execution state through a program run.
type Ctx struct {
	Env *Env
	// Log receives each log statement's output line; nil discards.
	Log func(line string)
	// LoopHook, when non-nil, intercepts nested loop execution (the
	// SkipBlock runtime installs itself here). Returning handled=true means
	// the hook fully applied the loop's effects (by execution or by
	// restoration).
	LoopHook func(ctx *Ctx, l *Loop) (handled bool, err error)
}

// Emit formats and forwards a log line.
func (c *Ctx) Emit(label, line string) {
	if c.Log != nil {
		c.Log(label + ": " + line)
	}
}

// ExecStmts runs a statement list against ctx.
func ExecStmts(ctx *Ctx, stmts []Stmt) error {
	for i := range stmts {
		if err := ExecStmt(ctx, &stmts[i]); err != nil {
			return err
		}
	}
	return nil
}

// ExecStmt runs a single statement.
func ExecStmt(ctx *Ctx, s *Stmt) error {
	switch {
	case s.IsLog:
		line, err := s.EvalLog(ctx.Env)
		if err != nil {
			return fmt.Errorf("script: log %q: %w", s.Label, err)
		}
		ctx.Emit(s.Label, line)
		return nil
	case s.Loop != nil:
		if ctx.LoopHook != nil {
			handled, err := ctx.LoopHook(ctx, s.Loop)
			if err != nil || handled {
				return err
			}
		}
		return ExecLoop(ctx, s.Loop)
	default:
		if err := s.Do(ctx.Env); err != nil {
			return fmt.Errorf("script: %s: %w", s.Render(), err)
		}
		return nil
	}
}

// ExecLoop runs every iteration of a loop body.
func ExecLoop(ctx *Ctx, l *Loop) error {
	return ExecLoopTimed(ctx, l, nil)
}

// ExecLoopTimed runs a loop exactly like ExecLoop, additionally reporting
// each iteration's wall-clock duration to onIter (when non-nil). The record
// phase captures per-iteration timings with it for the replay scheduler's
// cost model.
func ExecLoopTimed(ctx *Ctx, l *Loop, onIter func(iter int, ns int64)) error {
	for i := 0; i < l.Iters; i++ {
		var t0 time.Time
		if onIter != nil {
			t0 = time.Now()
		}
		ctx.Env.SetInt(l.IterVar, i)
		if err := ExecStmts(ctx, l.Body); err != nil {
			return fmt.Errorf("script: loop %s iteration %d: %w", l.ID, i, err)
		}
		if onIter != nil {
			onIter(i, time.Since(t0).Nanoseconds())
		}
	}
	return nil
}

// Run executes a whole program: setup, main loop, tail.
func Run(ctx *Ctx, p *Program) error {
	if err := ExecStmts(ctx, p.Setup); err != nil {
		return err
	}
	if p.Main != nil {
		if err := ExecLoop(ctx, p.Main); err != nil {
			return err
		}
	}
	return ExecStmts(ctx, p.Tail)
}

// ---------- static structure ----------

// Loops returns every loop in the program (main first, then nested loops in
// pre-order).
func (p *Program) Loops() []*Loop {
	var out []*Loop
	if p.Main != nil {
		out = append(out, p.Main)
		out = append(out, nestedLoops(p.Main.Body)...)
	}
	return out
}

func nestedLoops(body []Stmt) []*Loop {
	var out []*Loop
	for i := range body {
		if l := body[i].Loop; l != nil {
			out = append(out, l)
			out = append(out, nestedLoops(l.Body)...)
		}
	}
	return out
}

// FindLoop returns the loop with the given ID, if present.
func (p *Program) FindLoop(id string) (*Loop, bool) {
	for _, l := range p.Loops() {
		if l.ID == id {
			return l, true
		}
	}
	return nil, false
}

// DefinedBefore returns the set of variables first assigned outside loop l
// (in setup or in enclosing loops before l's body). A variable assigned only
// inside l's body is "loop-scoped" to l (paper §5.2.1's filtering step).
func (p *Program) DefinedBefore(l *Loop) map[string]bool {
	defined := map[string]bool{}
	var walk func(stmts []Stmt) bool // returns true when l was reached
	collect := func(s *Stmt) {
		for _, t := range s.Pat.Targets {
			defined[t] = true
		}
	}
	walk = func(stmts []Stmt) bool {
		for i := range stmts {
			s := &stmts[i]
			if s.Loop != nil {
				if s.Loop == l {
					return true
				}
				defined[s.Loop.IterVar] = true
				if walk(s.Loop.Body) {
					return true
				}
				continue
			}
			collect(s)
		}
		return false
	}
	if walk(p.Setup) {
		return defined
	}
	if p.Main != nil {
		if p.Main == l {
			return defined
		}
		defined[p.Main.IterVar] = true
		if walk(p.Main.Body) {
			return defined
		}
	}
	walk(p.Tail)
	return defined
}
