package script

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"flor.dev/flor/internal/value"
)

// counterProgram builds a small program:
//
//	setup:  total = 0
//	main loop (3 epochs):
//	  nested loop "train" (4 steps): total = total + 1  [as method call pattern]
//	  log "epoch_total"
//	tail:   log "final"
func counterProgram() *Program {
	inc := AssignMethod([]string{"total"}, "total", "add", []string{"one"}, func(e *Env) error {
		e.SetInt("total", e.Int("total")+1)
		return nil
	})
	return &Program{
		Name: "counter",
		Setup: []Stmt{
			AssignExpr([]string{"total"}, nil, func(e *Env) error {
				e.SetInt("total", 0)
				return nil
			}),
		},
		Main: &Loop{
			ID:      "main",
			IterVar: "epoch",
			Iters:   3,
			Body: []Stmt{
				LoopStmt(&Loop{ID: "train", IterVar: "step", Iters: 4, Body: []Stmt{inc}}),
				LogStmt("epoch_total", func(e *Env) (string, error) {
					return fmt.Sprintf("epoch=%d total=%d", e.Int("epoch"), e.Int("total")), nil
				}),
			},
		},
		Tail: []Stmt{
			LogStmt("final", func(e *Env) (string, error) {
				return fmt.Sprintf("total=%d", e.Int("total")), nil
			}),
		},
	}
}

func runCollectingLogs(t *testing.T, p *Program) []string {
	t.Helper()
	var logs []string
	ctx := &Ctx{Env: NewEnv(), Log: func(line string) { logs = append(logs, line) }}
	if err := Run(ctx, p); err != nil {
		t.Fatal(err)
	}
	return logs
}

func TestRunExecutesLoopsAndLogs(t *testing.T) {
	logs := runCollectingLogs(t, counterProgram())
	want := []string{
		"epoch_total: epoch=0 total=4",
		"epoch_total: epoch=1 total=8",
		"epoch_total: epoch=2 total=12",
		"final: total=12",
	}
	if len(logs) != len(want) {
		t.Fatalf("logs = %v", logs)
	}
	for i := range want {
		if logs[i] != want[i] {
			t.Fatalf("log[%d] = %q, want %q", i, logs[i], want[i])
		}
	}
}

func TestEnvOrderAndAccessors(t *testing.T) {
	e := NewEnv()
	e.SetInt("b", 1)
	e.SetFloat("a", 2.5)
	e.Set("c", &value.String{V: "x"})
	names := e.Names()
	if len(names) != 3 || names[0] != "b" || names[1] != "a" || names[2] != "c" {
		t.Fatalf("Names = %v", names)
	}
	if e.Int("b") != 1 || e.Float("a") != 2.5 {
		t.Fatal("accessors wrong")
	}
	e.SetInt("b", 9)
	if e.Int("b") != 9 {
		t.Fatal("SetInt did not update")
	}
	if len(e.Names()) != 3 {
		t.Fatal("re-set changed order length")
	}
	if _, ok := e.Get("missing"); ok {
		t.Fatal("Get on missing name")
	}
}

func TestSetIntReusesBox(t *testing.T) {
	e := NewEnv()
	e.SetInt("x", 1)
	box := e.MustGet("x")
	e.SetInt("x", 2)
	if e.MustGet("x") != box {
		t.Fatal("SetInt replaced the box; restores hold stale pointers")
	}
}

func TestMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGet on undefined did not panic")
		}
	}()
	NewEnv().MustGet("nope")
}

func TestRenderPatterns(t *testing.T) {
	cases := []struct {
		stmt Stmt
		want string
	}{
		{AssignMethod([]string{"p", "l"}, "net", "forward", []string{"batch"}, nil), "p,l = net.forward(batch)"},
		{AssignFunc([]string{"v"}, "loss_fn", []string{"p", "y"}, nil), "v = loss_fn(p,y)"},
		{AssignExpr([]string{"x"}, []string{"y"}, nil), "x = expr(y)"},
		{ExprMethod("optimizer", "step", nil, nil), "optimizer.step()"},
		{ExprFunc("print", []string{"acc"}, nil), "print(acc)"},
		{LogStmt("loss", nil), "log loss"},
		{LoopStmt(&Loop{ID: "train", IterVar: "i", Iters: 5}), "loop train i:5"},
	}
	for _, c := range cases {
		if got := c.stmt.Render(); got != c.want {
			t.Fatalf("Render = %q, want %q", got, c.want)
		}
	}
}

func TestLoopsEnumeration(t *testing.T) {
	p := counterProgram()
	loops := p.Loops()
	if len(loops) != 2 || loops[0].ID != "main" || loops[1].ID != "train" {
		ids := []string{}
		for _, l := range loops {
			ids = append(ids, l.ID)
		}
		t.Fatalf("Loops = %v", ids)
	}
	if l, ok := p.FindLoop("train"); !ok || l.Iters != 4 {
		t.Fatal("FindLoop(train) failed")
	}
	if _, ok := p.FindLoop("nope"); ok {
		t.Fatal("FindLoop found a ghost")
	}
}

func TestDefinedBefore(t *testing.T) {
	p := counterProgram()
	train, _ := p.FindLoop("train")
	defined := p.DefinedBefore(train)
	if !defined["total"] {
		t.Fatal("total defined in setup should be visible before train loop")
	}
	if !defined["epoch"] {
		t.Fatal("main iter var should be defined before nested loop")
	}
	if defined["step"] {
		t.Fatal("train's own iter var is not defined before it")
	}
	mainDefined := p.DefinedBefore(p.Main)
	if !mainDefined["total"] || mainDefined["epoch"] {
		t.Fatalf("DefinedBefore(main) = %v", mainDefined)
	}
}

func TestShapeEncodeDecodeRoundTrip(t *testing.T) {
	ps := StructureOf(counterProgram())
	dec, err := DecodeProgramShape(ps.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Name != "counter" || dec.Main == nil {
		t.Fatalf("decoded shape wrong: %+v", dec)
	}
	if len(dec.Main.Body) != 2 || dec.Main.Body[0].LoopID != "train" {
		t.Fatalf("main body shape wrong: %+v", dec.Main.Body)
	}
	if string(dec.Encode()) != string(ps.Encode()) {
		t.Fatal("re-encoding differs")
	}
}

func TestDiffNoChangesYieldsNoProbes(t *testing.T) {
	rec := StructureOf(counterProgram())
	probes, err := DiffProbes(rec, counterProgram())
	if err != nil {
		t.Fatal(err)
	}
	if len(probes) != 0 {
		t.Fatalf("probes = %v, want none", probes)
	}
}

func TestDiffDetectsOuterProbe(t *testing.T) {
	rec := StructureOf(counterProgram())
	probed := counterProgram()
	probed.Main.Body = AddLog(probed.Main.Body, 1, LogStmt("weights_norm", func(e *Env) (string, error) {
		return "1.0", nil
	}))
	probes, err := DiffProbes(rec, probed)
	if err != nil {
		t.Fatal(err)
	}
	if !probes["main"] || probes["train"] {
		t.Fatalf("probes = %v, want {main}", probes)
	}
}

func TestDiffDetectsInnerProbe(t *testing.T) {
	rec := StructureOf(counterProgram())
	probed := counterProgram()
	train := probed.Main.Body[0].Loop
	train.Body = AddLog(train.Body, 0, LogStmt("grad_norm", func(e *Env) (string, error) {
		return "0.5", nil
	}))
	probes, err := DiffProbes(rec, probed)
	if err != nil {
		t.Fatal(err)
	}
	if !probes["main"] || !probes["train"] {
		t.Fatalf("probes = %v, want {main, train}", probes)
	}
}

func TestDiffProbeInSetupProbesNoLoop(t *testing.T) {
	rec := StructureOf(counterProgram())
	probed := counterProgram()
	probed.Setup = AddLog(probed.Setup, 1, LogStmt("init", func(e *Env) (string, error) { return "ok", nil }))
	probed.Tail = AddLog(probed.Tail, 0, LogStmt("bye", func(e *Env) (string, error) { return "ok", nil }))
	probes, err := DiffProbes(rec, probed)
	if err != nil {
		t.Fatal(err)
	}
	if len(probes) != 0 {
		t.Fatalf("probes = %v, want none", probes)
	}
}

func TestDiffRejectsNonLogChanges(t *testing.T) {
	rec := StructureOf(counterProgram())
	changed := counterProgram()
	changed.Main.Body = append(changed.Main.Body, ExprFunc("evil", nil, func(e *Env) error { return nil }))
	var diffErr *DiffError
	if _, err := DiffProbes(rec, changed); !errors.As(err, &diffErr) {
		t.Fatalf("added non-log statement not rejected: %v", err)
	}
}

func TestDiffRejectsRemovedStatements(t *testing.T) {
	rec := StructureOf(counterProgram())
	changed := counterProgram()
	changed.Main.Body = changed.Main.Body[:1] // drop the pre-existing log stmt
	if _, err := DiffProbes(rec, changed); err == nil {
		t.Fatal("removed statement not rejected")
	}
}

func TestDiffRejectsLoopHeaderChange(t *testing.T) {
	rec := StructureOf(counterProgram())
	changed := counterProgram()
	changed.Main.Iters = 5
	if _, err := DiffProbes(rec, changed); err == nil {
		t.Fatal("changed main loop header not rejected")
	}
	changed2 := counterProgram()
	changed2.Main.Body[0].Loop.Iters = 9
	if _, err := DiffProbes(rec, changed2); err == nil {
		t.Fatal("changed nested loop header not rejected")
	}
}

func TestDiffPreExistingLogsAreNotProbes(t *testing.T) {
	// The recorded program already has "epoch_total" and "final" logs; they
	// must not be treated as probes.
	withProbe := counterProgram()
	withProbe.Main.Body = AddLog(withProbe.Main.Body, 2, LogStmt("extra", func(e *Env) (string, error) { return "x", nil }))
	rec := StructureOf(counterProgram())
	probes, err := DiffProbes(rec, withProbe)
	if err != nil {
		t.Fatal(err)
	}
	if !probes["main"] || len(probes) != 1 {
		t.Fatalf("probes = %v", probes)
	}
}

func TestLoopHookInterceptsNestedLoop(t *testing.T) {
	p := counterProgram()
	skipped := 0
	ctx := &Ctx{
		Env: NewEnv(),
		LoopHook: func(c *Ctx, l *Loop) (bool, error) {
			if l.ID == "train" {
				skipped++
				// Apply the loop's effect wholesale, as a restore would.
				c.Env.SetInt("total", c.Env.Int("total")+4)
				return true, nil
			}
			return false, nil
		},
	}
	if err := Run(ctx, p); err != nil {
		t.Fatal(err)
	}
	if skipped != 3 {
		t.Fatalf("hook intercepted %d executions, want 3", skipped)
	}
	if ctx.Env.Int("total") != 12 {
		t.Fatalf("total = %d, want 12", ctx.Env.Int("total"))
	}
}

func TestLoopHookErrorPropagates(t *testing.T) {
	p := counterProgram()
	boom := errors.New("boom")
	ctx := &Ctx{
		Env: NewEnv(),
		LoopHook: func(c *Ctx, l *Loop) (bool, error) {
			return false, boom
		},
	}
	if err := Run(ctx, p); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestStatementErrorIncludesRendering(t *testing.T) {
	p := &Program{
		Name: "failing",
		Setup: []Stmt{
			ExprMethod("obj", "explode", nil, func(e *Env) error { return errors.New("kaput") }),
		},
	}
	err := Run(&Ctx{Env: NewEnv()}, p)
	if err == nil || !strings.Contains(err.Error(), "obj.explode()") {
		t.Fatalf("error %v should name the statement", err)
	}
}

func TestRenderProgram(t *testing.T) {
	out := RenderProgram(counterProgram())
	for _, want := range []string{"program counter", "loop main epoch:3", "loop train step:4", "log epoch_total", "log final"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
}
