package script

import (
	"fmt"
	"strings"

	"flor.dev/flor/internal/codec"
)

// Shape is the serializable structure of one statement: its canonical
// rendering plus, for loops, the nested body. Shapes are what record stores
// as "a copy of the code", and what replay diffs against the edited program
// to find probes.
type Shape struct {
	Line   string
	LoopID string // non-empty iff the statement is a loop
	Body   []Shape
}

// ProgramShape is the serializable structure of a whole program.
type ProgramShape struct {
	Name  string
	Setup []Shape
	Main  *Shape
	Tail  []Shape
}

// StructureOf extracts the static structure of a program.
func StructureOf(p *Program) *ProgramShape {
	ps := &ProgramShape{Name: p.Name, Setup: shapesOf(p.Setup), Tail: shapesOf(p.Tail)}
	if p.Main != nil {
		s := loopShape(p.Main)
		ps.Main = &s
	}
	return ps
}

func shapesOf(stmts []Stmt) []Shape {
	out := make([]Shape, 0, len(stmts))
	for i := range stmts {
		s := &stmts[i]
		if s.Loop != nil {
			out = append(out, loopShape(s.Loop))
			continue
		}
		out = append(out, Shape{Line: s.Render()})
	}
	return out
}

func loopShape(l *Loop) Shape {
	return Shape{
		Line:   fmt.Sprintf("loop %s %s:%d", l.ID, l.IterVar, l.Iters),
		LoopID: l.ID,
		Body:   shapesOf(l.Body),
	}
}

// Encode serializes the program shape.
func (ps *ProgramShape) Encode() []byte {
	w := codec.NewWriter()
	w.String(ps.Name)
	encodeShapes(w, ps.Setup)
	if ps.Main != nil {
		w.Bool(true)
		encodeShape(w, *ps.Main)
	} else {
		w.Bool(false)
	}
	encodeShapes(w, ps.Tail)
	return w.Bytes()
}

func encodeShapes(w *codec.Writer, shapes []Shape) {
	w.Uvarint(uint64(len(shapes)))
	for _, s := range shapes {
		encodeShape(w, s)
	}
}

func encodeShape(w *codec.Writer, s Shape) {
	w.String(s.Line)
	w.String(s.LoopID)
	encodeShapes(w, s.Body)
}

// DecodeProgramShape parses an encoded program shape.
func DecodeProgramShape(b []byte) (*ProgramShape, error) {
	r := codec.NewReader(b)
	ps := &ProgramShape{}
	var err error
	if ps.Name, err = r.String(); err != nil {
		return nil, err
	}
	if ps.Setup, err = decodeShapes(r); err != nil {
		return nil, err
	}
	hasMain, err := r.Bool()
	if err != nil {
		return nil, err
	}
	if hasMain {
		s, err := decodeShape(r)
		if err != nil {
			return nil, err
		}
		ps.Main = &s
	}
	if ps.Tail, err = decodeShapes(r); err != nil {
		return nil, err
	}
	return ps, nil
}

func decodeShapes(r *codec.Reader) ([]Shape, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	out := make([]Shape, 0, n)
	for i := uint64(0); i < n; i++ {
		s, err := decodeShape(r)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func decodeShape(r *codec.Reader) (Shape, error) {
	var s Shape
	var err error
	if s.Line, err = r.String(); err != nil {
		return s, err
	}
	if s.LoopID, err = r.String(); err != nil {
		return s, err
	}
	if s.Body, err = decodeShapes(r); err != nil {
		return s, err
	}
	return s, nil
}

// DiffError reports a structural difference that cannot be explained by
// hindsight logging statements: the user changed the code, so the recorded
// checkpoints are not trustworthy for replaying it.
type DiffError struct {
	Where  string
	Reason string
}

// Error implements error.
func (e *DiffError) Error() string {
	return fmt.Sprintf("script: program differs beyond hindsight logging at %s: %s", e.Where, e.Reason)
}

// DiffResult is the outcome of a hindsight source diff.
type DiffResult struct {
	// Probes contains the IDs of every loop whose subtree gained a log
	// statement: those loops cannot be skipped on replay.
	Probes map[string]bool
	// NewLabels contains the labels of the added log statements; the
	// deferred correctness check excludes their output lines when comparing
	// record and replay logs.
	NewLabels map[string]bool
}

// DiffProbes compares the recorded program structure against the current
// program (paper Figure 1). Every difference must be an *added* log
// statement; each one marks its enclosing loops as probed. Probes in
// setup/tail do not probe any loop (those sections always re-execute).
func DiffProbes(recorded *ProgramShape, current *Program) (map[string]bool, error) {
	res, err := DiffHindsight(recorded, current)
	if err != nil {
		return nil, err
	}
	return res.Probes, nil
}

// DiffHindsight performs the full hindsight source diff, returning both the
// probed loops and the labels of the newly added log statements.
func DiffHindsight(recorded *ProgramShape, current *Program) (*DiffResult, error) {
	res := &DiffResult{Probes: map[string]bool{}, NewLabels: map[string]bool{}}
	if err := diffBlock("setup", recorded.Setup, current.Setup, nil, res); err != nil {
		return nil, err
	}
	switch {
	case recorded.Main == nil && current.Main == nil:
	case recorded.Main == nil || current.Main == nil:
		return nil, &DiffError{Where: "main", Reason: "main loop added or removed"}
	default:
		cur := loopShape(current.Main)
		if recorded.Main.Line != cur.Line {
			return nil, &DiffError{Where: "main", Reason: fmt.Sprintf("loop header changed: %q vs %q", recorded.Main.Line, cur.Line)}
		}
		if err := diffBlock("main", recorded.Main.Body, current.Main.Body, []string{current.Main.ID}, res); err != nil {
			return nil, err
		}
	}
	if err := diffBlock("tail", recorded.Tail, current.Tail, nil, res); err != nil {
		return nil, err
	}
	return res, nil
}

func diffBlock(where string, rec []Shape, cur []Stmt, enclosing []string, res *DiffResult) error {
	i := 0
	for j := range cur {
		s := &cur[j]
		if s.IsLog {
			line := s.Render()
			if i < len(rec) && rec[i].Line == line && rec[i].LoopID == "" {
				i++ // pre-existing log statement
				continue
			}
			// A log statement absent from the recorded code: a probe.
			for _, id := range enclosing {
				res.Probes[id] = true
			}
			res.NewLabels[s.Label] = true
			continue
		}
		if i >= len(rec) {
			return &DiffError{Where: where, Reason: fmt.Sprintf("statement added: %q", s.Render())}
		}
		if s.Loop != nil {
			curLine := fmt.Sprintf("loop %s %s:%d", s.Loop.ID, s.Loop.IterVar, s.Loop.Iters)
			if rec[i].LoopID != s.Loop.ID || rec[i].Line != curLine {
				return &DiffError{Where: where, Reason: fmt.Sprintf("loop changed: %q vs %q", rec[i].Line, curLine)}
			}
			if err := diffBlock(where+"/"+s.Loop.ID, rec[i].Body, s.Loop.Body, append(enclosing, s.Loop.ID), res); err != nil {
				return err
			}
			i++
			continue
		}
		if rec[i].Line != s.Render() || rec[i].LoopID != "" {
			return &DiffError{Where: where, Reason: fmt.Sprintf("statement changed: %q vs %q", rec[i].Line, s.Render())}
		}
		i++
	}
	if i != len(rec) {
		return &DiffError{Where: where, Reason: fmt.Sprintf("%d recorded statement(s) removed", len(rec)-i)}
	}
	return nil
}

// AddLog returns a copy of the statement list with a log statement inserted
// at index idx; used to build probed program versions.
func AddLog(stmts []Stmt, idx int, log Stmt) []Stmt {
	if !log.IsLog {
		panic("script: AddLog requires a log statement")
	}
	out := make([]Stmt, 0, len(stmts)+1)
	out = append(out, stmts[:idx]...)
	out = append(out, log)
	out = append(out, stmts[idx:]...)
	return out
}

// RenderProgram renders the whole program as indented pseudo-source; useful
// for debugging and documentation output.
func RenderProgram(p *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\n", p.Name)
	renderStmts(&b, p.Setup, 1)
	if p.Main != nil {
		fmt.Fprintf(&b, "  loop %s %s:%d:\n", p.Main.ID, p.Main.IterVar, p.Main.Iters)
		renderStmts(&b, p.Main.Body, 2)
	}
	renderStmts(&b, p.Tail, 1)
	return b.String()
}

func renderStmts(b *strings.Builder, stmts []Stmt, depth int) {
	indent := strings.Repeat("  ", depth)
	for i := range stmts {
		s := &stmts[i]
		if s.Loop != nil {
			fmt.Fprintf(b, "%sloop %s %s:%d:\n", indent, s.Loop.ID, s.Loop.IterVar, s.Loop.Iters)
			renderStmts(b, s.Loop.Body, depth+1)
			continue
		}
		fmt.Fprintf(b, "%s%s\n", indent, s.Render())
	}
}
