package serve_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"flor.dev/flor/internal/obs"
	"flor.dev/flor/internal/serve"
)

// withRegistry enables the metrics registry for one test. It must run before
// the daemon is constructed: handles resolve at construction time.
func withRegistry(t *testing.T) {
	t.Helper()
	obs.Enable()
	t.Cleanup(obs.Disable)
}

// TestMetricsEndpoint drives a replay and a sample through the HTTP API and
// checks the /metrics scrape reflects them in Prometheus text format.
func TestMetricsEndpoint(t *testing.T) {
	withRegistry(t)
	fx := startDaemon(t, serve.Options{})

	if resp, body := fx.post(t, "/v1/runs/run-a/replay", serve.ReplayRequest{Probe: "wnorm"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("replay: %d: %s", resp.StatusCode, body)
	}
	if resp, body := fx.get(t, "/v1/runs/run-a/logs?iters=2,5"); resp.StatusCode != http.StatusOK {
		t.Fatalf("sample: %d: %s", resp.StatusCode, body)
	}

	resp, body := fx.get(t, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		`flor_serve_queries_total{kind="replay",run="run-a"} 1`,
		`flor_serve_queries_total{kind="sample",run="run-a"} 1`,
		`flor_serve_inflight{run="run-a"} 0`,
		"# TYPE flor_serve_queries_total counter",
		"# TYPE flor_serve_query_seconds histogram",
		`flor_serve_query_seconds_count{kind="replay"} 1`,
		`flor_serve_request_seconds_count{route="replay"} 1`,
		// The serving path exercises every instrumented family: replay
		// workers ran, the store LRU opened a store, and the scheduler pool
		// granted slots.
		"flor_replay_replays_total 1",
		"flor_serve_store_open 1",
		"flor_sched_slot_acquires_total",
		"flor_store_",
		// Store-tier fetch attribution: the replay restored checkpoints, so
		// some tier served bytes.
		"flor_store_fetch_bytes_total{tier=",
		// Query-latency buckets carry trace-ID exemplars pointing back at a
		// retrievable trace.
		`# {trace_id="t`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	// Every non-comment line is "name{labels} value", optionally followed by
	// an OpenMetrics-style exemplar suffix on histogram bucket lines.
	for sc := bufio.NewScanner(bytes.NewReader(body)); sc.Scan(); {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if i := strings.Index(line, " # "); i >= 0 {
			if !strings.Contains(line, "_bucket") {
				t.Errorf("exemplar on a non-bucket line %q", line)
			}
			line = line[:i]
		}
		if got := len(strings.Fields(line)); got != 2 {
			t.Errorf("malformed scrape line %q: %d fields", line, got)
		}
	}
}

// TestMetricsEndpointDisabled pins the disabled-registry scrape body.
func TestMetricsEndpointDisabled(t *testing.T) {
	fx := startDaemon(t, serve.Options{})
	resp, body := fx.get(t, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "disabled") {
		t.Fatalf("disabled scrape = %q, want a disabled comment", body)
	}
}

// TestReplayTraceEndpoint replays, follows the reported trace_id, and checks
// the NDJSON span log; trace retention does not depend on the metrics
// registry being enabled.
func TestReplayTraceEndpoint(t *testing.T) {
	fx := startDaemon(t, serve.Options{})

	resp, body := fx.post(t, "/v1/runs/run-a/replay", serve.ReplayRequest{Probe: "wnorm", Workers: 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replay: %d: %s", resp.StatusCode, body)
	}
	var rr serve.ReplayResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.TraceID == "" {
		t.Fatal("replay response carries no trace_id")
	}

	resp, body = fx.get(t, "/v1/runs/run-a/trace/"+rr.TraceID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("trace content type = %q", ct)
	}
	names := map[string]int{}
	for sc := bufio.NewScanner(bytes.NewReader(body)); sc.Scan(); {
		var span obs.Span
		if err := json.Unmarshal(sc.Bytes(), &span); err != nil {
			t.Fatalf("bad span line %q: %v", sc.Text(), err)
		}
		if span.Worker < 0 || span.DurNs < 0 {
			t.Fatalf("bad span %+v", span)
		}
		names[span.Name]++
	}
	for _, want := range []string{"setup", "work", "worker"} {
		if names[want] == 0 {
			t.Errorf("trace has no %q spans (got %v)", want, names)
		}
	}
	if names["worker"] != rr.Workers {
		t.Errorf("trace has %d worker summary spans, response says %d workers", names["worker"], rr.Workers)
	}

	// Unknown trace IDs and unknown runs both 404.
	if resp, _ := fx.get(t, "/v1/runs/run-a/trace/t999999"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace: %d, want 404", resp.StatusCode)
	}
	if resp, _ := fx.get(t, "/v1/runs/nope/trace/"+rr.TraceID); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown run: %d, want 404", resp.StatusCode)
	}
}

// TestStatsPayloadCachesAndResidency checks the enriched /v1/stats payload:
// decoded-payload cache accounting per store and LRU residency ages.
func TestStatsPayloadCachesAndResidency(t *testing.T) {
	fx := startDaemon(t, serve.Options{})

	for i := 0; i < 2; i++ {
		if resp, body := fx.post(t, "/v1/runs/run-a/replay", serve.ReplayRequest{}); resp.StatusCode != http.StatusOK {
			t.Fatalf("replay %d: %d: %s", i, resp.StatusCode, body)
		}
	}
	st := fx.stats(t)

	pc, ok := st.PayloadCaches["run-a"]
	if !ok {
		t.Fatalf("stats payload_caches missing run-a: %+v", st.PayloadCaches)
	}
	if pc.Hits+pc.Misses == 0 {
		t.Errorf("payload cache saw no traffic: %+v", pc)
	}
	if len(st.StoreCache.Residency) == 0 {
		t.Fatal("stats store_cache.residency empty after queries")
	}
	res := st.StoreCache.Residency[0]
	if res.RunID != "run-a" {
		t.Errorf("MRU resident = %q, want run-a", res.RunID)
	}
	if res.AgeSeconds < 0 || res.IdleSeconds < 0 || res.IdleSeconds > res.AgeSeconds+1 {
		t.Errorf("implausible residency %+v", res)
	}
	// The consistent snapshot: nothing in flight once queries returned.
	if got := st.Runs["run-a"].Inflight; got != 0 {
		t.Errorf("inflight = %d after queries completed", got)
	}
}
