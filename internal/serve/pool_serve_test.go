package serve_test

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"flor.dev/flor/internal/core"
	"flor.dev/flor/internal/script"
	"flor.dev/flor/internal/serve"
)

// recordPooledFamily records n sibling runs of the same program family into
// one shared chunk pool and returns (base dir, run dirs).
func recordPooledFamily(t *testing.T, n int) (string, []string) {
	t.Helper()
	base := t.TempDir()
	pool := filepath.Join(base, "POOL")
	var dirs []string
	for i := 0; i < n; i++ {
		dir := filepath.Join(base, fmt.Sprintf("run-%d", i))
		_, err := core.Record(dir, miniFactory(4, 3, uint64(100+i)), core.RecordOptions{
			DisableAdaptive: true,
			Pool:            pool,
		})
		if err != nil {
			t.Fatalf("record pooled run %d: %v", i, err)
		}
		dirs = append(dirs, dir)
	}
	return base, dirs
}

// TestServePooledRunsGroupedWithSharedCache pins the serving side of the
// pool: registration detects and pins the pool root, sibling runs group
// under it in /v1/stats, concurrent sibling replays are byte-identical to
// the library, and the decoded-payload cache is shared pool-wide.
func TestServePooledRunsGroupedWithSharedCache(t *testing.T) {
	base, dirs := recordPooledFamily(t, 2)
	srv := serve.New(serve.Options{DefaultWorkers: 2})
	for i, dir := range dirs {
		err := srv.Register(serve.RunConfig{
			ID:  fmt.Sprintf("run-%d", i),
			Dir: dir,
			Factories: map[string]func() *script.Program{
				"base": miniFactory(4, 3, uint64(100+i)),
			},
		})
		if err != nil {
			t.Fatalf("register run-%d: %v", i, err)
		}
	}

	// Listings carry the pool root; both runs share it.
	runs := srv.Runs()
	if len(runs) != 2 || runs[0].Pool == "" || runs[0].Pool != runs[1].Pool {
		t.Fatalf("runs not grouped by pool: %+v", runs)
	}
	if !strings.HasPrefix(runs[0].Format, "v2-pooled/") {
		t.Fatalf("format = %q, want v2-pooled/*", runs[0].Format)
	}

	// Concurrent sibling replays: byte-identical to direct library replay.
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for i := range dirs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := srv.Replay(context.Background(), fmt.Sprintf("run-%d", i), serve.ReplayRequest{Workers: 2})
			if err != nil {
				errs <- err
				return
			}
			rec, err := core.LoadRecording(dirs[i])
			if err != nil {
				errs <- err
				return
			}
			want := rec.RecordLog
			if len(res.Logs) != len(want) {
				errs <- fmt.Errorf("run-%d: %d log lines, want %d", i, len(res.Logs), len(want))
				return
			}
			for j := range want {
				if res.Logs[j] != want[j] {
					errs <- fmt.Errorf("run-%d line %d: %q != %q", i, j, res.Logs[j], want[j])
					return
				}
			}
			if res.Anomalies != 0 {
				errs <- fmt.Errorf("run-%d: %d anomalies", i, res.Anomalies)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Pool stats surface in the daemon snapshot once the pool is open.
	st := srv.Stats()
	if len(st.ChunkPools) != 1 {
		t.Fatalf("chunk pools in stats: %+v", st.ChunkPools)
	}
	for root, ps := range st.ChunkPools {
		if !strings.HasPrefix(root, base[:1]) || len(ps.Runs) != 2 || !ps.Open || ps.Chunks == 0 {
			t.Fatalf("pool stats: root=%q %+v", root, ps)
		}
	}
}

// TestGracefulDrain pins Shutdown's contract: in-flight queries finish,
// later queries and registrations fail with ErrDraining (503 over HTTP),
// and Shutdown returns once the daemon is idle.
func TestGracefulDrain(t *testing.T) {
	dir := t.TempDir()
	if _, err := core.Record(dir, miniFactory(6, 4, 7), core.RecordOptions{DisableAdaptive: true}); err != nil {
		t.Fatal(err)
	}
	srv := serve.New(serve.Options{DefaultWorkers: 2})
	if err := srv.Register(serve.RunConfig{
		ID:        "mini",
		Dir:       dir,
		Factories: map[string]func() *script.Program{"base": miniFactory(6, 4, 7)},
	}); err != nil {
		t.Fatal(err)
	}

	// An in-flight query started before the drain must complete.
	started := make(chan struct{})
	type result struct {
		logs int
		err  error
	}
	resCh := make(chan result, 1)
	go func() {
		close(started)
		res, err := srv.Replay(context.Background(), "mini", serve.ReplayRequest{})
		if err != nil {
			resCh <- result{err: err}
			return
		}
		resCh <- result{logs: len(res.Logs)}
	}()
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	r := <-resCh
	// The in-flight replay either finished (normal drain) or never began
	// before the drain flag landed; it must not fail any other way.
	if r.err != nil && !errors.Is(r.err, serve.ErrDraining) {
		t.Fatalf("in-flight replay failed: %v", r.err)
	}

	// After the drain: queries and registrations refuse.
	if _, err := srv.Replay(context.Background(), "mini", serve.ReplayRequest{}); !errors.Is(err, serve.ErrDraining) {
		t.Fatalf("post-drain replay error = %v, want ErrDraining", err)
	}
	if _, err := srv.Sample(context.Background(), "mini", serve.SampleRequest{Iterations: []int{1}}); !errors.Is(err, serve.ErrDraining) {
		t.Fatalf("post-drain sample error = %v, want ErrDraining", err)
	}
	if err := srv.Register(serve.RunConfig{ID: "late", Dir: dir,
		Factories: map[string]func() *script.Program{"base": miniFactory(6, 4, 7)}}); !errors.Is(err, serve.ErrDraining) {
		t.Fatalf("post-drain register error = %v, want ErrDraining", err)
	}
	if !srv.Stats().Draining {
		t.Fatal("stats do not report draining")
	}

	// And over HTTP the refusal maps to 503.
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/runs/mini/replay", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain HTTP status = %d, want 503", resp.StatusCode)
	}
}

// TestStreamedLogsChunkedAndByteIdentical is the very-long-replay streaming
// regression: a sample over every iteration streams with chunked transfer
// encoding (no Content-Length, one NDJSON record per iteration, records
// arriving incrementally) and its concatenated logs are byte-identical to
// the buffered endpoint's.
func TestStreamedLogsChunkedAndByteIdentical(t *testing.T) {
	const epochs = 60 // long replay: many sampled iterations
	dir := t.TempDir()
	if _, err := core.Record(dir, miniFactory(epochs, 2, 9), core.RecordOptions{DisableAdaptive: true}); err != nil {
		t.Fatal(err)
	}
	srv := serve.New(serve.Options{DefaultWorkers: 2, QueueTimeout: time.Minute})
	if err := srv.Register(serve.RunConfig{
		ID:        "long",
		Dir:       dir,
		Factories: map[string]func() *script.Program{"base": miniFactory(epochs, 2, 9)},
	}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var iters []string
	for i := 0; i < epochs; i++ {
		iters = append(iters, fmt.Sprint(i))
	}
	itersArg := strings.Join(iters, ",")

	// Buffered reference.
	var buffered struct {
		Logs []string `json:"logs"`
	}
	resp, err := http.Get(ts.URL + "/v1/runs/long/logs?iters=" + itersArg)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&buffered); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Streamed: chunked transfer, NDJSON per iteration.
	resp, err = http.Get(ts.URL + "/v1/runs/long/logs?iters=" + itersArg + "&stream=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", resp.StatusCode)
	}
	if resp.ContentLength >= 0 {
		t.Fatalf("streamed response has Content-Length %d; want chunked", resp.ContentLength)
	}
	if len(resp.TransferEncoding) == 0 || resp.TransferEncoding[0] != "chunked" {
		t.Fatalf("transfer encoding = %v, want chunked", resp.TransferEncoding)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	var streamed []string
	records := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var chunk struct {
			Iteration *int     `json:"iteration"`
			Logs      []string `json:"logs"`
			Error     string   `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &chunk); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if chunk.Error != "" {
			t.Fatalf("mid-stream error: %s", chunk.Error)
		}
		if chunk.Iteration == nil || *chunk.Iteration != records {
			t.Fatalf("record %d reports iteration %v", records, chunk.Iteration)
		}
		records++
		streamed = append(streamed, chunk.Logs...)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if records != epochs {
		t.Fatalf("streamed %d records, want %d (one per iteration — whole-replay buffering regressed)", records, epochs)
	}
	if len(streamed) != len(buffered.Logs) {
		t.Fatalf("streamed %d log lines, buffered %d", len(streamed), len(buffered.Logs))
	}
	for i := range streamed {
		if streamed[i] != buffered.Logs[i] {
			t.Fatalf("line %d: streamed %q != buffered %q", i, streamed[i], buffered.Logs[i])
		}
	}
}

// TestStreamedLogsErrorBeforeFirstChunk keeps client errors as proper HTTP
// statuses when nothing has been streamed yet.
func TestStreamedLogsErrorBeforeFirstChunk(t *testing.T) {
	dir := t.TempDir()
	if _, err := core.Record(dir, miniFactory(3, 2, 11), core.RecordOptions{DisableAdaptive: true}); err != nil {
		t.Fatal(err)
	}
	srv := serve.New(serve.Options{})
	if err := srv.Register(serve.RunConfig{
		ID:        "mini",
		Dir:       dir,
		Factories: map[string]func() *script.Program{"base": miniFactory(3, 2, 11)},
	}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/runs/mini/logs?iters=99&stream=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range streamed sample status = %d, want 400", resp.StatusCode)
	}
}
