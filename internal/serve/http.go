package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"flor.dev/flor/internal/obs"
)

// RegisterRequest is the body of POST /v1/runs: register a recorded run
// directory against a program from the server's library.
type RegisterRequest struct {
	ID      string `json:"id"`
	Dir     string `json:"dir"`
	Program string `json:"program"`
}

// Handler returns the daemon's HTTP/JSON API:
//
//	GET  /v1/runs                 registered runs (probes, layout, open state)
//	POST /v1/runs                 register a run dir (RegisterRequest body);
//	                              bad directories (unknown store format) 400
//	POST /v1/runs/{id}/replay     full replay query (ReplayRequest body)
//	GET  /v1/runs/{id}/logs       sample query (?iters=3,7&probe=name);
//	                              &stream=1 streams NDJSON chunks (one
//	                              {"iteration","logs"} object per sampled
//	                              iteration, chunked transfer encoding)
//	                              instead of buffering the whole replay
//	POST /v1/runs/{id}/logs       sample query (SampleRequest body)
//	POST /v1/runs/{id}/warm       pull a remote run's checkpoint content into
//	                              the chunk-cache tier ahead of queries
//	                              (no-op for local runs; synchronous)
//	GET  /v1/runs/{id}/trace/{trace_id}
//	                              a completed query's span trace as NDJSON
//	                              (trace_id from the replay or sample
//	                              response; served from the run's trace ring,
//	                              then from the durable trace store when one
//	                              is configured — 404 only once both miss)
//	GET  /v1/stats                pool, store-cache, per-run and chunk-pool
//	                              stats (incl. per-query cost attribution and
//	                              oldest in-flight query age)
//	GET  /v1/debug/tasks          background-task traces (GC phases, spool
//	                              passes): active tasks first, then recent
//	                              completions
//	GET  /v1/debug/slow?limit=N   slow-query log entries, newest first (404
//	                              unless a trace store is configured)
//	GET  /metrics                 Prometheus text exposition of the metrics
//	                              registry (empty comment when disabled);
//	                              latency histogram buckets carry trace-ID
//	                              exemplars
//
// While the daemon drains (Shutdown), new queries and registrations get
// 503.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	// timed wraps a handler with a per-route latency histogram; the handle
	// resolves once per route when the mux is built, not per request.
	timed := func(route string, h http.HandlerFunc) http.HandlerFunc {
		hist := obs.H(obs.MServeRequestSeconds, obs.L("route", route))
		return func(w http.ResponseWriter, r *http.Request) {
			t0 := time.Now()
			h(w, r)
			hist.ObserveNs(time.Since(t0).Nanoseconds())
		}
	}
	mux.HandleFunc("GET /v1/runs", timed("runs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Runs())
	}))
	mux.HandleFunc("POST /v1/runs", timed("register", func(w http.ResponseWriter, r *http.Request) {
		var req RegisterRequest
		if !readJSON(w, r, &req) {
			return
		}
		if err := s.RegisterByName(req.ID, req.Dir, req.Program); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, s.Runs())
	}))
	mux.HandleFunc("GET /v1/stats", timed("stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	}))
	mux.HandleFunc("GET /v1/debug/tasks", timed("tasks", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, obs.Tasks())
	}))
	mux.HandleFunc("GET /v1/debug/slow", timed("slow", func(w http.ResponseWriter, r *http.Request) {
		if s.traces == nil {
			writeJSON(w, http.StatusNotFound, errBody(fmt.Errorf("serve: no trace store configured (set Options.TraceDir / -trace-dir)")))
			return
		}
		limit := 100
		if v := r.URL.Query().Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 {
				writeJSON(w, http.StatusBadRequest, errBody(fmt.Errorf("serve: bad limit %q", v)))
				return
			}
			limit = n
		}
		writeJSON(w, http.StatusOK, s.SlowQueries(limit))
	}))
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.MetricsRegistry().WritePrometheus(w)
	})
	mux.HandleFunc("POST /v1/runs/{id}/replay", timed("replay", func(w http.ResponseWriter, r *http.Request) {
		var req ReplayRequest
		if !readJSON(w, r, &req) {
			return
		}
		res, err := s.Replay(r.Context(), r.PathValue("id"), req)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	}))
	mux.HandleFunc("POST /v1/runs/{id}/warm", timed("warm", func(w http.ResponseWriter, r *http.Request) {
		res, err := s.WarmRun(r.PathValue("id"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	}))
	mux.HandleFunc("GET /v1/runs/{id}/trace/{trace_id}", timed("trace", func(w http.ResponseWriter, r *http.Request) {
		tr, err := s.Trace(r.PathValue("id"), r.PathValue("trace_id"))
		if err != nil {
			writeErr(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = tr.WriteNDJSON(w)
	}))
	sample := func(w http.ResponseWriter, r *http.Request, req SampleRequest) {
		res, err := s.Sample(r.Context(), r.PathValue("id"), req)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	}
	mux.HandleFunc("POST /v1/runs/{id}/logs", timed("logs", func(w http.ResponseWriter, r *http.Request) {
		var req SampleRequest
		if !readJSON(w, r, &req) {
			return
		}
		sample(w, r, req)
	}))
	mux.HandleFunc("GET /v1/runs/{id}/logs", timed("logs", func(w http.ResponseWriter, r *http.Request) {
		req := SampleRequest{Probe: r.URL.Query().Get("probe")}
		iters, err := parseIters(r.URL.Query().Get("iters"))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errBody(err))
			return
		}
		req.Iterations = iters
		if v := r.URL.Query().Get("stream"); v == "1" || v == "true" {
			s.streamSample(w, r, req)
			return
		}
		sample(w, r, req)
	}))
	return mux
}

// streamSample serves a sampling query incrementally: one NDJSON line per
// replayed iteration, flushed as produced, so the response is chunked
// rather than buffered — a replay over hundreds of iterations delivers its
// first logs after the first iteration and never holds the full output in
// memory. Every chunk write carries a rolling deadline (the queue timeout):
// a client that stops reading mid-stream would otherwise stall the replay
// between iterations while it pins an in-flight slot and blocks drain.
// Errors after the first chunk arrive as a final {"error": ...} line (the
// 200 status is already on the wire).
func (s *Server) streamSample(w http.ResponseWriter, r *http.Request, req SampleRequest) {
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	started := false
	_, err := s.SampleStream(r.Context(), r.PathValue("id"), req, func(chunk SampleChunk) error {
		if !started {
			started = true
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
		}
		// Best-effort: not every ResponseWriter supports deadlines
		// (httptest recorders); the write itself still errors out the
		// query when the connection is gone.
		_ = rc.SetWriteDeadline(time.Now().Add(s.opts.QueueTimeout))
		if err := enc.Encode(chunk); err != nil {
			return err
		}
		// The ResponseController follows Unwrap through middleware
		// wrappers, unlike a direct http.Flusher assertion.
		_ = rc.Flush()
		return nil
	})
	if started {
		// The per-chunk deadlines were set on the connection, which
		// keep-alive reuses for later (possibly slow, non-streamed)
		// responses; clear them so the stream's timeout does not outlive
		// the stream.
		defer rc.SetWriteDeadline(time.Time{})
	}
	if err != nil {
		if !started {
			writeErr(w, err)
			return
		}
		_ = enc.Encode(errBody(err))
	}
}

// ListenAndServe serves the API on opts.Addr until the listener fails or
// Shutdown drains the daemon (then it returns http.ErrServerClosed).
func (s *Server) ListenAndServe() error {
	hs, err := s.installHTTPServer(&http.Server{Addr: s.opts.Addr, Handler: s.Handler()})
	if err != nil {
		return err
	}
	return hs.ListenAndServe()
}

// Serve serves the API on an existing listener (tests, embedding); Shutdown
// stops it like ListenAndServe's.
func (s *Server) Serve(l net.Listener) error {
	hs, err := s.installHTTPServer(&http.Server{Handler: s.Handler()})
	if err != nil {
		return err
	}
	return hs.Serve(l)
}

// installHTTPServer publishes the http.Server for Shutdown to stop. If a
// drain already began — a signal racing startup — the listener must not
// start at all: Shutdown has already passed the point where it would have
// stopped it, and an orphaned listener would serve 503s forever.
func (s *Server) installHTTPServer(hs *http.Server) (*http.Server, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, http.ErrServerClosed
	}
	s.httpSrv = hs
	return hs, nil
}

// parseIters parses "3,7,12" into iterations.
func parseIters(raw string) ([]int, error) {
	if strings.TrimSpace(raw) == "" {
		return nil, fmt.Errorf("serve: missing iters parameter (e.g. ?iters=3,7)")
	}
	var out []int
	for _, f := range strings.Split(raw, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("serve: bad iteration %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeJSON(w, http.StatusBadRequest, errBody(fmt.Errorf("serve: bad request body: %w", err)))
		return false
	}
	return true
}

func errBody(err error) map[string]string {
	return map[string]string{"error": err.Error()}
}

// writeErr maps typed serve errors to HTTP status codes.
func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrUnknownRun), errors.Is(err, ErrUnknownTrace):
		status = http.StatusNotFound
	case errors.Is(err, ErrUnknownProbe), errors.Is(err, ErrBadRequest):
		status = http.StatusBadRequest
	case errors.Is(err, ErrBusy):
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrQueueTimeout):
		status = http.StatusGatewayTimeout
	case errors.Is(err, ErrDraining):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, errBody(err))
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(body)
}
