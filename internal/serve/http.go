package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
)

// RegisterRequest is the body of POST /v1/runs: register a recorded run
// directory against a program from the server's library.
type RegisterRequest struct {
	ID      string `json:"id"`
	Dir     string `json:"dir"`
	Program string `json:"program"`
}

// Handler returns the daemon's HTTP/JSON API:
//
//	GET  /v1/runs                 registered runs (probes, layout, open state)
//	POST /v1/runs                 register a run dir (RegisterRequest body);
//	                              bad directories (unknown store format) 400
//	POST /v1/runs/{id}/replay     full replay query (ReplayRequest body)
//	GET  /v1/runs/{id}/logs       sample query (?iters=3,7&probe=name)
//	POST /v1/runs/{id}/logs       sample query (SampleRequest body)
//	GET  /v1/stats                pool, store-cache and per-run stats
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/runs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Runs())
	})
	mux.HandleFunc("POST /v1/runs", func(w http.ResponseWriter, r *http.Request) {
		var req RegisterRequest
		if !readJSON(w, r, &req) {
			return
		}
		if err := s.RegisterByName(req.ID, req.Dir, req.Program); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, s.Runs())
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("POST /v1/runs/{id}/replay", func(w http.ResponseWriter, r *http.Request) {
		var req ReplayRequest
		if !readJSON(w, r, &req) {
			return
		}
		res, err := s.Replay(r.Context(), r.PathValue("id"), req)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	sample := func(w http.ResponseWriter, r *http.Request, req SampleRequest) {
		res, err := s.Sample(r.Context(), r.PathValue("id"), req)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	}
	mux.HandleFunc("POST /v1/runs/{id}/logs", func(w http.ResponseWriter, r *http.Request) {
		var req SampleRequest
		if !readJSON(w, r, &req) {
			return
		}
		sample(w, r, req)
	})
	mux.HandleFunc("GET /v1/runs/{id}/logs", func(w http.ResponseWriter, r *http.Request) {
		req := SampleRequest{Probe: r.URL.Query().Get("probe")}
		iters, err := parseIters(r.URL.Query().Get("iters"))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errBody(err))
			return
		}
		req.Iterations = iters
		sample(w, r, req)
	})
	return mux
}

// ListenAndServe serves the API on opts.Addr until the listener fails.
func (s *Server) ListenAndServe() error {
	return http.ListenAndServe(s.opts.Addr, s.Handler())
}

// Serve serves the API on an existing listener (tests, embedding).
func (s *Server) Serve(l net.Listener) error {
	return http.Serve(l, s.Handler())
}

// parseIters parses "3,7,12" into iterations.
func parseIters(raw string) ([]int, error) {
	if strings.TrimSpace(raw) == "" {
		return nil, fmt.Errorf("serve: missing iters parameter (e.g. ?iters=3,7)")
	}
	var out []int
	for _, f := range strings.Split(raw, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("serve: bad iteration %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeJSON(w, http.StatusBadRequest, errBody(fmt.Errorf("serve: bad request body: %w", err)))
		return false
	}
	return true
}

func errBody(err error) map[string]string {
	return map[string]string{"error": err.Error()}
}

// writeErr maps typed serve errors to HTTP status codes.
func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrUnknownRun):
		status = http.StatusNotFound
	case errors.Is(err, ErrUnknownProbe), errors.Is(err, ErrBadRequest):
		status = http.StatusBadRequest
	case errors.Is(err, ErrBusy):
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrQueueTimeout):
		status = http.StatusGatewayTimeout
	}
	writeJSON(w, status, errBody(err))
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(body)
}
