package serve_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"flor.dev/flor/internal/script"
	"flor.dev/flor/internal/serve"
	"flor.dev/flor/internal/store/remote"
)

// TestServeRemoteRunStateless pins the daemon's stateless open path: a run
// whose packs live only in the remote object pool is registered with just
// its ID, queried with logs byte-identical to a local replay, and the
// chunk-cache tier shows up in /v1/stats — warm on the second query.
func TestServeRemoteRunStateless(t *testing.T) {
	base := t.TempDir()
	src := filepath.Join(base, "src")
	factory := recordRun(t, src, 8, 3, 17)
	want := directReplay(t, src, factory)

	// Upload the run, then throw the local copy's role away: the daemon
	// gets a remote root and an empty scratch dir, nothing else.
	pool := filepath.Join(base, "pool")
	obj, err := remote.NewFSStore(pool)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := remote.UploadRun(obj, src, "run-r"); err != nil {
		t.Fatal(err)
	}

	srv := serve.New(serve.Options{
		Remote:        pool,
		CacheDir:      filepath.Join(base, "cache"),
		CacheMaxBytes: 64 << 20,
	})
	if err := srv.Register(serve.RunConfig{
		ID:     "run-r",
		Dir:    filepath.Join(base, "ctl", "run-r"),
		Remote: true,
		Factories: map[string]func() *script.Program{
			"base":  factory,
			"wnorm": withProbe(factory),
		},
	}); err != nil {
		t.Fatal(err)
	}
	// A remote registration of an unknown run is a client error, not a 500.
	if err := srv.Register(serve.RunConfig{
		ID: "ghost", Dir: filepath.Join(base, "ctl", "ghost"), Remote: true,
		Factories: map[string]func() *script.Program{"base": factory},
	}); err == nil {
		t.Fatal("registering an absent remote run succeeded")
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fx := &daemonFixture{srv: srv, ts: ts}

	for pass, label := range []string{"cold", "warm"} {
		resp, body := fx.post(t, "/v1/runs/run-r/replay", serve.ReplayRequest{Probe: "wnorm", Workers: 2})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s replay: status %d: %s", label, resp.StatusCode, body)
		}
		var rr serve.ReplayResponse
		if err := json.Unmarshal(body, &rr); err != nil {
			t.Fatal(err)
		}
		if len(rr.Logs) != len(want) {
			t.Fatalf("%s replay: %d log lines, want %d", label, len(rr.Logs), len(want))
		}
		for i := range want {
			if rr.Logs[i] != want[i] {
				t.Fatalf("%s replay log %d = %q, want %q", label, i, rr.Logs[i], want[i])
			}
		}
		st := fx.stats(t)
		if st.CacheTier == nil {
			t.Fatalf("%s: stats carry no cache_tier block", label)
		}
		if pass == 0 && st.CacheTier.MissBytes == 0 {
			t.Fatal("cold replay fetched nothing through the cache tier")
		}
		if pass == 1 && st.CacheTier.HitBytes == 0 {
			t.Fatal("warm replay hit nothing in the cache tier")
		}
	}
}
