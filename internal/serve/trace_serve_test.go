package serve_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"flor.dev/flor/internal/obs"
	"flor.dev/flor/internal/script"
	"flor.dev/flor/internal/serve"
	"flor.dev/flor/internal/store"
)

// sumTierAttrs folds the per-tier byte/frame attributes of a trace's
// "restore" spans into one FetchSnapshot.
func sumTierAttrs(spans []obs.Span) (store.FetchSnapshot, int) {
	var fs store.FetchSnapshot
	restores := 0
	for _, sp := range spans {
		if sp.Name != "restore" {
			continue
		}
		restores++
		fs.MmapBytes += sp.Attrs["mmap_bytes"]
		fs.MmapFrames += sp.Attrs["mmap_frames"]
		fs.ScatterBytes += sp.Attrs["scatter_bytes"]
		fs.ScatterFrames += sp.Attrs["scatter_frames"]
		fs.RangedBytes += sp.Attrs["ranged_bytes"]
		fs.RangedFrames += sp.Attrs["ranged_frames"]
		fs.CacheBytes += sp.Attrs["cache_bytes"]
		fs.CacheFrames += sp.Attrs["cache_frames"]
		fs.RemoteBytes += sp.Attrs["remote_bytes"]
		fs.RemoteFrames += sp.Attrs["remote_frames"]
		fs.CacheTierBytes += sp.Attrs["cache_tier_bytes"]
		fs.CacheTierFrames += sp.Attrs["cache_tier_frames"]
	}
	return fs, restores
}

func parseTraceSpans(t *testing.T, body []byte) []obs.Span {
	t.Helper()
	var spans []obs.Span
	for sc := bufio.NewScanner(bytes.NewReader(body)); sc.Scan(); {
		var sp obs.Span
		if err := json.Unmarshal(sc.Bytes(), &sp); err != nil {
			t.Fatalf("bad span line %q: %v", sc.Text(), err)
		}
		spans = append(spans, sp)
	}
	return spans
}

// TestReplayCostTierAttribution is the acceptance check for store-tier
// attribution: a replay's response carries a QueryCost whose fetch snapshot
// covers every restored checkpoint, and the trace's restore spans attribute
// exactly the same bytes tier by tier.
func TestReplayCostTierAttribution(t *testing.T) {
	fx := startDaemon(t, serve.Options{})

	resp, body := fx.post(t, "/v1/runs/run-a/replay",
		serve.ReplayRequest{Probe: "wnorm", Workers: 4, Init: "weak"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replay: %d: %s", resp.StatusCode, body)
	}
	var rr serve.ReplayResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Cost.RestoredBytes == 0 || rr.Cost.RestoreNs == 0 {
		t.Fatalf("replay restored nothing: cost %+v", rr.Cost)
	}
	if rr.Cost.Fetch.TotalFrames() == 0 || rr.Cost.Fetch.TotalBytes() == 0 {
		t.Fatalf("restored bytes have no tier attribution: %+v", rr.Cost.Fetch)
	}

	resp, body = fx.get(t, "/v1/runs/run-a/trace/"+rr.TraceID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: %d: %s", resp.StatusCode, body)
	}
	spans := parseTraceSpans(t, body)
	fromSpans, restores := sumTierAttrs(spans)
	if restores == 0 {
		t.Fatal("trace has no restore spans")
	}
	if fromSpans != rr.Cost.Fetch {
		t.Fatalf("restore spans attribute %+v, response cost says %+v", fromSpans, rr.Cost.Fetch)
	}
	// Worker summary spans carry the same per-tier byte totals.
	var workerBytes int64
	for _, sp := range spans {
		if sp.Name == "worker" {
			workerBytes += sp.Attrs["mmap_bytes"] + sp.Attrs["scatter_bytes"] +
				sp.Attrs["ranged_bytes"] + sp.Attrs["cache_bytes"] +
				sp.Attrs["remote_bytes"] + sp.Attrs["cache_tier_bytes"]
		}
	}
	if workerBytes != rr.Cost.Fetch.TotalBytes() {
		t.Fatalf("worker spans attribute %d bytes, cost says %d", workerBytes, rr.Cost.Fetch.TotalBytes())
	}

	// The per-run cost accumulates in /v1/stats.
	st := fx.stats(t)
	if got := st.Runs["run-a"].Cost; got != rr.Cost {
		t.Fatalf("stats cost = %+v, want %+v", got, rr.Cost)
	}
}

// TestSampleTraceID checks sampling queries are traced like replays: the
// response names a retrievable trace with slot-wait, setup and per-iteration
// work spans, and a cost snapshot.
func TestSampleTraceID(t *testing.T) {
	fx := startDaemon(t, serve.Options{})

	resp, body := fx.get(t, "/v1/runs/run-a/logs?iters=2,5&probe=wnorm")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sample: %d: %s", resp.StatusCode, body)
	}
	var sr serve.SampleResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.TraceID == "" {
		t.Fatal("sample response carries no trace_id")
	}
	resp, body = fx.get(t, "/v1/runs/run-a/trace/"+sr.TraceID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: %d: %s", resp.StatusCode, body)
	}
	names := map[string]int{}
	for _, sp := range parseTraceSpans(t, body) {
		names[sp.Name]++
	}
	for _, want := range []string{"slot_wait", "setup", "work"} {
		if names[want] == 0 {
			t.Errorf("sample trace has no %q spans (got %v)", want, names)
		}
	}
	if names["work"] != 2 {
		t.Errorf("sample trace has %d work spans, want 2 (one per sampled iteration)", names["work"])
	}
	// A sampled jump-and-replay restores checkpoint state; the cost must
	// attribute it.
	if sr.Cost.Fetch.TotalFrames() == 0 {
		t.Errorf("sample cost has no tier attribution: %+v", sr.Cost)
	}
	// Replays and samples share one trace-ID sequence per run.
	if sr.TraceID == "t000000" {
		t.Errorf("sample trace ID not allocated: %q", sr.TraceID)
	}
}

// TestTraceRingEvictionAndDurableFallback checks the configurable ring
// (satellite: serve.Options.TraceRing) and the durable trace store behind
// it: with a ring of 2 and three queries, the oldest trace ages out of the
// ring but is still served from the trace store, and the eviction counts
// into flor_serve_traces_dropped_total.
func TestTraceRingEvictionAndDurableFallback(t *testing.T) {
	withRegistry(t)
	traceDir := t.TempDir()
	fx := startDaemon(t, serve.Options{TraceRing: 2, TraceDir: traceDir})

	var ids []string
	for i := 0; i < 3; i++ {
		resp, body := fx.post(t, "/v1/runs/run-a/replay", serve.ReplayRequest{Workers: 1})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("replay %d: %d: %s", i, resp.StatusCode, body)
		}
		var rr serve.ReplayResponse
		if err := json.Unmarshal(body, &rr); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, rr.TraceID)
	}
	// All three remain retrievable: the newest two from the ring, the oldest
	// through the durable store.
	for _, id := range ids {
		if resp, body := fx.get(t, "/v1/runs/run-a/trace/"+id); resp.StatusCode != http.StatusOK {
			t.Fatalf("trace %s: %d: %s", id, resp.StatusCode, body)
		}
	}
	_, scrape := fx.get(t, "/metrics")
	if !strings.Contains(string(scrape), `flor_serve_traces_dropped_total{run="run-a"} 1`) {
		t.Error("scrape missing the ring-eviction counter")
	}
	st := fx.stats(t)
	if st.TraceStore == nil || st.TraceStore.Dir != traceDir || st.TraceStore.Bytes == 0 {
		t.Fatalf("stats trace_store = %+v", st.TraceStore)
	}
}

// TestTraceRingOnlyEviction pins the no-trace-store behavior: an aged-out
// trace 404s.
func TestTraceRingOnlyEviction(t *testing.T) {
	fx := startDaemon(t, serve.Options{TraceRing: 1})
	var ids []string
	for i := 0; i < 2; i++ {
		resp, body := fx.post(t, "/v1/runs/run-a/replay", serve.ReplayRequest{Workers: 1})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("replay %d: %d: %s", i, resp.StatusCode, body)
		}
		var rr serve.ReplayResponse
		if err := json.Unmarshal(body, &rr); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, rr.TraceID)
	}
	if resp, _ := fx.get(t, "/v1/runs/run-a/trace/"+ids[0]); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted trace: %d, want 404", resp.StatusCode)
	}
	if resp, _ := fx.get(t, "/v1/runs/run-a/trace/"+ids[1]); resp.StatusCode != http.StatusOK {
		t.Fatalf("retained trace: %d, want 200", resp.StatusCode)
	}
}

// TestTraceSurvivesRestart is the acceptance check for trace durability: a
// trace recorded by one daemon process is retrievable from a new daemon over
// the same trace directory, and the new daemon's trace IDs continue past the
// persisted sequence instead of shadowing it.
func TestTraceSurvivesRestart(t *testing.T) {
	base := t.TempDir()
	runDir := filepath.Join(base, "run")
	traceDir := filepath.Join(base, "traces")
	factory := recordRun(t, runDir, 8, 3, 11)
	reg := func(srv *serve.Server) {
		t.Helper()
		err := srv.Register(serve.RunConfig{
			ID:        "run",
			Dir:       runDir,
			Factories: map[string]func() *script.Program{"base": factory},
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	srv1 := serve.New(serve.Options{TraceDir: traceDir})
	if err := srv1.TraceStoreErr(); err != nil {
		t.Fatal(err)
	}
	reg(srv1)
	ctx := context.Background()
	rr, err := srv1.Replay(ctx, "run", serve.ReplayRequest{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	srv2 := serve.New(serve.Options{TraceDir: traceDir})
	reg(srv2)
	tr, err := srv2.Trace("run", rr.TraceID)
	if err != nil {
		t.Fatalf("trace %s after restart: %v", rr.TraceID, err)
	}
	fromSpans, restores := sumTierAttrs(tr.Spans())
	if restores == 0 || fromSpans != rr.Cost.Fetch {
		t.Fatalf("rehydrated trace attributes %+v over %d restores, want %+v",
			fromSpans, restores, rr.Cost.Fetch)
	}
	// The restarted daemon allocates fresh IDs past the persisted sequence.
	rr2, err := srv2.Replay(ctx, "run", serve.ReplayRequest{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rr2.TraceID <= rr.TraceID {
		t.Fatalf("post-restart trace ID %q does not continue past %q", rr2.TraceID, rr.TraceID)
	}
	if err := srv2.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestSlowQueryCapture checks slow-query classification end to end: with a
// threshold every query exceeds, queries are flagged in stats, counted in
// metrics, and their full span detail lands in the slow-query log served at
// /v1/debug/slow — bypassing trace sampling.
func TestSlowQueryCapture(t *testing.T) {
	withRegistry(t)
	fx := startDaemon(t, serve.Options{
		TraceDir:           t.TempDir(),
		TraceSampleN:       1000, // would sample nearly everything out...
		SlowQueryThreshold: time.Nanosecond,
	})

	resp, body := fx.post(t, "/v1/runs/run-a/replay", serve.ReplayRequest{Workers: 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replay: %d: %s", resp.StatusCode, body)
	}
	var rr serve.ReplayResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if resp, body := fx.get(t, "/v1/runs/run-a/logs?iters=2"); resp.StatusCode != http.StatusOK {
		t.Fatalf("sample: %d: %s", resp.StatusCode, body)
	}

	if got := fx.stats(t).Runs["run-a"].SlowQueries; got != 2 {
		t.Fatalf("slow queries = %d, want 2", got)
	}
	resp, body = fx.get(t, "/v1/debug/slow?limit=10")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/debug/slow: %d: %s", resp.StatusCode, body)
	}
	var slow []struct {
		TraceID string     `json:"trace_id"`
		Run     string     `json:"run"`
		Kind    string     `json:"kind"`
		DurNs   int64      `json:"dur_ns"`
		Slow    bool       `json:"slow"`
		Spans   []obs.Span `json:"spans"`
	}
	if err := json.Unmarshal(body, &slow); err != nil {
		t.Fatalf("slow log: %v: %s", err, body)
	}
	if len(slow) != 2 {
		t.Fatalf("slow log has %d entries, want 2", len(slow))
	}
	// Newest first: the sample, then the replay.
	if slow[0].Kind != "sample" || slow[1].Kind != "replay" {
		t.Fatalf("slow log order = [%s %s], want [sample replay]", slow[0].Kind, slow[1].Kind)
	}
	for _, e := range slow {
		if !e.Slow || e.Run != "run-a" || e.DurNs <= 0 || len(e.Spans) == 0 {
			t.Fatalf("implausible slow entry %+v", e)
		}
	}
	// The slow replay's full span detail survived sampling: it is also
	// retrievable as a trace despite SampleN=1000.
	if resp, _ := fx.get(t, "/v1/runs/run-a/trace/"+rr.TraceID); resp.StatusCode != http.StatusOK {
		t.Fatalf("slow trace sampled out: %d", resp.StatusCode)
	}
	_, scrape := fx.get(t, "/metrics")
	if !strings.Contains(string(scrape), `flor_serve_slow_queries_total{run="run-a"} 2`) {
		t.Error("scrape missing the slow-query counter")
	}
}

// TestStatsOldestQueryAge checks the in-flight age satellite: while a query
// is parked in flight, /v1/stats reports how long it has been running; once
// it completes, the age disappears.
func TestStatsOldestQueryAge(t *testing.T) {
	dir := t.TempDir()
	factory := recordRun(t, dir, 4, 2, 3)
	srv := serve.New(serve.Options{Slots: 2})
	block := make(chan struct{})
	blockableRun(t, srv, dir, factory, block)

	done := make(chan error, 1)
	go func() {
		_, err := srv.Replay(context.Background(), "gated", serve.ReplayRequest{Probe: "block", Workers: 1})
		done <- err
	}()
	waitForInflight(t, srv, "gated", 1)
	time.Sleep(20 * time.Millisecond)
	st := srv.Stats().Runs["gated"]
	if st.OldestQueryAgeSeconds <= 0 {
		t.Fatalf("in-flight query has no age: %+v", st)
	}
	if st.OldestQueryAgeSeconds > 60 {
		t.Fatalf("implausible query age %v", st.OldestQueryAgeSeconds)
	}
	close(block)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats().Runs["gated"]; st.OldestQueryAgeSeconds != 0 {
		t.Fatalf("idle run still reports query age: %+v", st)
	}
}

// TestDebugTasksEndpoint checks /v1/debug/tasks serves background-task
// traces (the daemon itself runs none here, so the body is a JSON list).
func TestDebugTasksEndpoint(t *testing.T) {
	fx := startDaemon(t, serve.Options{})
	resp, body := fx.get(t, "/v1/debug/tasks")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/debug/tasks: %d: %s", resp.StatusCode, body)
	}
	var tasks []obs.TaskRecord
	if err := json.Unmarshal(body, &tasks); err != nil {
		t.Fatalf("tasks: %v: %s", err, body)
	}
	// No trace store configured: the slow-query log 404s with guidance.
	if resp, body := fx.get(t, "/v1/debug/slow"); resp.StatusCode != http.StatusNotFound ||
		!strings.Contains(string(body), "trace store") {
		t.Fatalf("/v1/debug/slow without a store: %d: %s", resp.StatusCode, body)
	}
}
