package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"flor.dev/flor/internal/core"
	"flor.dev/flor/internal/replay"
	"flor.dev/flor/internal/script"
	"flor.dev/flor/internal/serve"
	"flor.dev/flor/internal/tensor"
	"flor.dev/flor/internal/value"
	"flor.dev/flor/internal/xrand"
)

// miniFactory builds a small deterministic training program (seeded RNG
// perturbing a weight vector in a nested train loop).
func miniFactory(epochs, steps int, seed uint64) func() *script.Program {
	return func() *script.Program {
		train := &script.Loop{
			ID:      "train",
			IterVar: "step",
			Iters:   steps,
			Body: []script.Stmt{
				script.AssignMethod([]string{"w"}, "rng", "perturb", []string{"w"}, func(e *script.Env) error {
					w := e.MustGet("w").(*value.Tensor).T
					rng := e.MustGet("rng").(*value.RNG).R
					for i := 0; i < w.Len(); i++ {
						w.Data()[i] += rng.Float64() * 0.01
					}
					return nil
				}),
			},
		}
		return &script.Program{
			Name: "mini",
			Setup: []script.Stmt{
				script.AssignFunc([]string{"w"}, "zeros", nil, func(e *script.Env) error {
					e.Set("w", &value.Tensor{T: tensor.New(64)})
					return nil
				}),
				script.AssignFunc([]string{"rng"}, "RNG", nil, func(e *script.Env) error {
					e.Set("rng", &value.RNG{R: xrand.New(seed)})
					return nil
				}),
			},
			Main: &script.Loop{
				ID:      "main",
				IterVar: "epoch",
				Iters:   epochs,
				Body: []script.Stmt{
					script.LoopStmt(train),
					script.LogStmt("loss", func(e *script.Env) (string, error) {
						w := e.MustGet("w").(*value.Tensor).T
						return fmt.Sprintf("epoch=%d sum=%.17g", e.Int("epoch"), w.Sum()), nil
					}),
				},
			},
		}
	}
}

// withProbe adds a hindsight log statement to the main loop.
func withProbe(f func() *script.Program) func() *script.Program {
	return func() *script.Program {
		p := f()
		p.Main.Body = script.AddLog(p.Main.Body, 1, script.LogStmt("wnorm", func(e *script.Env) (string, error) {
			return fmt.Sprintf("%.17g", e.MustGet("w").(*value.Tensor).T.Norm()), nil
		}))
		return p
	}
}

// recordRun records miniFactory into dir and returns the factory.
func recordRun(t *testing.T, dir string, epochs, steps int, seed uint64) func() *script.Program {
	t.Helper()
	factory := miniFactory(epochs, steps, seed)
	if _, err := core.Record(dir, factory, core.RecordOptions{DisableAdaptive: true}); err != nil {
		t.Fatal(err)
	}
	return factory
}

type daemonFixture struct {
	srv       *serve.Server
	ts        *httptest.Server
	factories map[string]func() *script.Program // runID → base factory
	dirs      map[string]string
}

// startDaemon records two runs and serves them from one daemon.
func startDaemon(t *testing.T, opts serve.Options) *daemonFixture {
	t.Helper()
	base := t.TempDir()
	fx := &daemonFixture{
		srv:       serve.New(opts),
		factories: map[string]func() *script.Program{},
		dirs:      map[string]string{},
	}
	for i, id := range []string{"run-a", "run-b"} {
		dir := filepath.Join(base, id)
		factory := recordRun(t, dir, 8, 3, uint64(11+i))
		fx.factories[id] = factory
		fx.dirs[id] = dir
		if err := fx.srv.Register(serve.RunConfig{
			ID:  id,
			Dir: dir,
			Factories: map[string]func() *script.Program{
				"base":  factory,
				"wnorm": withProbe(factory),
			},
		}); err != nil {
			t.Fatal(err)
		}
	}
	fx.ts = httptest.NewServer(fx.srv.Handler())
	t.Cleanup(fx.ts.Close)
	return fx
}

func (fx *daemonFixture) post(t *testing.T, path string, body any) (*http.Response, []byte) {
	t.Helper()
	js, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(fx.ts.URL+path, "application/json", bytes.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func (fx *daemonFixture) get(t *testing.T, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(fx.ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func (fx *daemonFixture) stats(t *testing.T) serve.Stats {
	t.Helper()
	_, body := fx.get(t, "/v1/stats")
	var st serve.Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("stats: %v: %s", err, body)
	}
	return st
}

// directReplay computes the single-process ground truth for a probed replay.
func directReplay(t *testing.T, dir string, factory func() *script.Program) []string {
	t.Helper()
	rec, err := core.LoadRecording(dir)
	if err != nil {
		t.Fatal(err)
	}
	res, err := replay.Replay(rec, withProbe(factory), replay.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Anomalies) != 0 {
		t.Fatalf("direct replay anomalies: %v", res.Anomalies)
	}
	return res.Logs
}

// TestDaemonConcurrentQueriesByteIdentical is the acceptance-criteria
// integration test: two runs served through one shared pool, overlapping
// replay + sample queries, logs byte-identical to single-process replay,
// and cache hits visible in /v1/stats on the second query.
func TestDaemonConcurrentQueriesByteIdentical(t *testing.T) {
	fx := startDaemon(t, serve.Options{Slots: 4, StoreCacheSize: 4})

	want := map[string][]string{}
	for id, f := range fx.factories {
		want[id] = directReplay(t, fx.dirs[id], f)
	}
	// Ground truth for the sample query: direct ReplaySample on the same
	// iterations.
	recA, err := core.LoadRecording(fx.dirs["run-a"])
	if err != nil {
		t.Fatal(err)
	}
	sres, err := replay.ReplaySample(recA, withProbe(fx.factories["run-a"]), []int{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	wantSample := sres.Logs

	// Overlapping queries: a replay per run plus a sample, concurrently.
	var wg sync.WaitGroup
	type result struct {
		id   string
		logs []string
		err  error
	}
	results := make(chan result, 3)
	for _, id := range []string{"run-a", "run-b"} {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			resp, body := fx.post(t, "/v1/runs/"+id+"/replay",
				serve.ReplayRequest{Probe: "wnorm", Workers: 4, Scheduler: "stealing", Init: "weak"})
			if resp.StatusCode != http.StatusOK {
				results <- result{id: id, err: fmt.Errorf("status %d: %s", resp.StatusCode, body)}
				return
			}
			var rr serve.ReplayResponse
			if err := json.Unmarshal(body, &rr); err != nil {
				results <- result{id: id, err: err}
				return
			}
			if rr.Anomalies != 0 {
				results <- result{id: id, err: fmt.Errorf("%d anomalies", rr.Anomalies)}
				return
			}
			results <- result{id: id, logs: rr.Logs}
		}(id)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, body := fx.get(t, "/v1/runs/run-a/logs?iters=2,5&probe=wnorm")
		if resp.StatusCode != http.StatusOK {
			results <- result{id: "sample", err: fmt.Errorf("status %d: %s", resp.StatusCode, body)}
			return
		}
		var sr serve.SampleResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			results <- result{id: "sample", err: err}
			return
		}
		results <- result{id: "sample", logs: sr.Logs}
	}()
	wg.Wait()
	close(results)

	for r := range results {
		if r.err != nil {
			t.Fatalf("%s: %v", r.id, r.err)
		}
		expect := want[r.id]
		if r.id == "sample" {
			expect = wantSample
		}
		if len(r.logs) != len(expect) {
			t.Fatalf("%s: %d log lines, want %d", r.id, len(r.logs), len(expect))
		}
		for i := range r.logs {
			if r.logs[i] != expect[i] {
				t.Fatalf("%s: log %d = %q, want %q", r.id, i, r.logs[i], expect[i])
			}
		}
	}

	// Second query against run-a: the store must be hot now.
	resp, body := fx.post(t, "/v1/runs/run-a/replay", serve.ReplayRequest{Probe: "wnorm"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second replay: status %d: %s", resp.StatusCode, body)
	}
	var rr serve.ReplayResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if !rr.StoreHit {
		t.Fatal("second query did not hit the store cache")
	}

	st := fx.stats(t)
	if st.StoreCache.Hits < 1 {
		t.Fatalf("store cache hits = %d, want >= 1", st.StoreCache.Hits)
	}
	if st.StoreCache.Misses != 2 {
		t.Fatalf("store cache misses = %d, want 2 (one per run)", st.StoreCache.Misses)
	}
	if st.Pool.Acquires < 8 {
		t.Fatalf("pool acquires = %d, want >= 8 (workers flowed through the shared pool)", st.Pool.Acquires)
	}
	ra := st.Runs["run-a"]
	if ra.Replays != 2 || ra.Samples != 1 || ra.StoreHits < 1 {
		t.Fatalf("run-a stats = %+v", ra)
	}
}

// blockableRun registers a run whose "block" probe parks every worker on a
// channel, keeping the query in-flight until the test releases it.
func blockableRun(t *testing.T, srv *serve.Server, dir string, factory func() *script.Program, block chan struct{}) {
	t.Helper()
	blocked := func() *script.Program {
		p := factory()
		p.Main.Body = script.AddLog(p.Main.Body, 1, script.LogStmt("gate", func(e *script.Env) (string, error) {
			<-block
			return "open", nil
		}))
		return p
	}
	if err := srv.Register(serve.RunConfig{
		ID:  "gated",
		Dir: dir,
		Factories: map[string]func() *script.Program{
			"base":  factory,
			"block": blocked,
		},
	}); err != nil {
		t.Fatal(err)
	}
}

// TestDaemonAdmissionRejectsBeyondLimit checks the in-flight bound: with
// MaxInflight=1 and queueing disabled, a second query is rejected with 429
// while the first is executing.
func TestDaemonAdmissionRejectsBeyondLimit(t *testing.T) {
	dir := t.TempDir()
	factory := recordRun(t, dir, 4, 2, 3)
	srv := serve.New(serve.Options{Slots: 2, MaxInflightPerRun: 1, MaxQueuePerRun: -1})
	block := make(chan struct{})
	blockableRun(t, srv, dir, factory, block)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(req serve.ReplayRequest) (*http.Response, []byte, error) {
		js, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/v1/runs/gated/replay", "application/json", bytes.NewReader(js))
		if err != nil {
			return nil, nil, err
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes(), nil
	}

	done := make(chan error, 1)
	go func() {
		resp, body, err := post(serve.ReplayRequest{Probe: "block", Workers: 1})
		if err == nil && resp.StatusCode != http.StatusOK {
			err = fmt.Errorf("blocked query: status %d: %s", resp.StatusCode, body)
		}
		done <- err
	}()

	// Wait until the first query is admitted and executing.
	waitForInflight(t, srv, "gated", 1)

	resp, body, err := post(serve.ReplayRequest{Probe: "base", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit query: status %d (want 429): %s", resp.StatusCode, body)
	}

	close(block)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	st := srv.Stats().Runs["gated"]
	if st.Rejected != 1 || st.Replays != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestDaemonQueueTimeout checks queueing with deadlines: a query queued
// behind a stuck one fails with 504 once the queue deadline passes.
func TestDaemonQueueTimeout(t *testing.T) {
	dir := t.TempDir()
	factory := recordRun(t, dir, 4, 2, 3)
	srv := serve.New(serve.Options{
		Slots: 2, MaxInflightPerRun: 1, MaxQueuePerRun: 1,
		QueueTimeout: 150 * time.Millisecond,
	})
	block := make(chan struct{})
	blockableRun(t, srv, dir, factory, block)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		js, _ := json.Marshal(serve.ReplayRequest{Probe: "block", Workers: 1})
		resp, err := http.Post(ts.URL+"/v1/runs/gated/replay", "application/json", bytes.NewReader(js))
		if err == nil {
			resp.Body.Close()
		}
	}()
	waitForInflight(t, srv, "gated", 1)

	js, _ := json.Marshal(serve.ReplayRequest{Probe: "base", Workers: 1})
	t0 := time.Now()
	resp, err := http.Post(ts.URL+"/v1/runs/gated/replay", "application/json", bytes.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("queued query: status %d, want 504", resp.StatusCode)
	}
	if since := time.Since(t0); since < 100*time.Millisecond {
		t.Fatalf("timed out after %v, before the queue deadline", since)
	}
	close(block)
	<-done
	if st := srv.Stats().Runs["gated"]; st.QueueTimeouts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestDaemonStoreCacheEviction checks the LRU eviction hook fires and a
// re-queried evicted run reloads as a miss.
func TestDaemonStoreCacheEviction(t *testing.T) {
	var evicted []string
	var mu sync.Mutex
	fx := startDaemon(t, serve.Options{
		Slots: 2, StoreCacheSize: 1,
		OnEvict: func(id string) { mu.Lock(); evicted = append(evicted, id); mu.Unlock() },
	})
	for _, id := range []string{"run-a", "run-b", "run-a"} {
		resp, body := fx.post(t, "/v1/runs/"+id+"/replay", serve.ReplayRequest{Workers: 1})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", id, resp.StatusCode, body)
		}
	}
	st := fx.stats(t)
	if st.StoreCache.Evictions != 2 || st.StoreCache.Misses != 3 {
		t.Fatalf("cache stats = %+v", st.StoreCache)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(evicted) != 2 || evicted[0] != "run-a" || evicted[1] != "run-b" {
		t.Fatalf("evictions = %v", evicted)
	}
}

// TestDaemonErrors covers the 404/400 paths.
func TestDaemonErrors(t *testing.T) {
	fx := startDaemon(t, serve.Options{Slots: 2})
	if resp, _ := fx.post(t, "/v1/runs/ghost/replay", serve.ReplayRequest{}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown run: status %d", resp.StatusCode)
	}
	if resp, _ := fx.post(t, "/v1/runs/run-a/replay", serve.ReplayRequest{Probe: "nope"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown probe: status %d", resp.StatusCode)
	}
	if resp, _ := fx.post(t, "/v1/runs/run-a/replay", serve.ReplayRequest{Scheduler: "chaotic"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown scheduler: status %d", resp.StatusCode)
	}
	if resp, _ := fx.get(t, "/v1/runs/run-a/logs?iters=zap"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad iters: status %d", resp.StatusCode)
	}
	if resp, _ := fx.get(t, "/v1/runs/run-a/logs?iters=9999"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range iters: status %d", resp.StatusCode)
	}
	if st := fx.srv.Stats().Runs["run-a"]; st.Errors != 0 {
		t.Fatalf("client mistakes counted as server errors: %+v", st)
	}
	resp, body := fx.get(t, "/v1/runs")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("runs: status %d", resp.StatusCode)
	}
	var runs []serve.RunInfo
	if err := json.Unmarshal(body, &runs); err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 || runs[0].ID != "run-a" || len(runs[0].Probes) != 2 {
		t.Fatalf("runs = %+v", runs)
	}
}

func waitForInflight(t *testing.T, srv *serve.Server, runID string, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if srv.Stats().Runs[runID].Inflight >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %s never reached %d in-flight queries", runID, n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
