// Package serve implements flord, the multi-run replay serving daemon: the
// step from "library" to "service" on the ROADMAP.
//
// The paper frames hindsight logging as an interactive workflow — an analyst
// poses post-hoc queries against many past training runs and expects
// low-latency replayed logs. One process per query wastes exactly the state
// that makes repeated queries fast: an open store's replayed manifest, its
// dedup chunk index, and the decoded payloads of content restored by earlier
// queries. The daemon keeps all three hot:
//
//   - a registry of recordings (run ID → directory + named probe factories),
//   - an LRU cache of shared read-only stores (store.OpenReadOnly), each
//     paired with a cross-query payload cache, so manifests are replayed
//     once and restored content decodes once,
//   - one shared worker pool (sched.Pool) with a global slot budget: the
//     lease/stealing executor's slots lifted above a single replay, so
//     segments from different queries compete for the same compute and a
//     cheap sample query is not starved behind a G=8 full replay
//     (cheapest-estimated-cost-first slot granting),
//   - per-run admission control: bounded in-flight queries per run, a
//     bounded wait queue, and a queueing deadline.
//
// http.go exposes the daemon over HTTP/JSON (/v1/runs for listing and
// registration, /v1/runs/{id}/replay, /v1/runs/{id}/logs, /v1/stats);
// cmd/flord is the standalone binary and flor.Serve the embedding API.
//
// # Registration and store-layout compatibility
//
// Runs register through Register (Go API) or POST /v1/runs (against a
// program name from Options.Library — probes are Go closures, so remote
// clients can only name programs the embedder registered — and confined to
// directories under Options.RegisterRoot, so remote clients cannot point
// the daemon at arbitrary server-side paths). Registration
// validates the directory's store layout eagerly via store.DetectLayout:
// v1, unsharded v2, and hash-prefix-sharded v2 directories (docs/FORMATS.md)
// all serve through the same lazily opened read-only path, while a
// directory recorded by a future layout — store.ErrUnknownFormat, carrying
// the unrecognized FORMAT marker — is rejected as a client error (HTTP 400)
// at registration instead of surfacing as a 500 from the first query. The
// detected layout is reported per run in /v1/runs listings. For sharded
// stores the hot read path issues per-shard ranged reads; the store LRU
// and payload caches need no layout-specific handling.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"flor.dev/flor/internal/backmat"
	"flor.dev/flor/internal/core"
	"flor.dev/flor/internal/obs"
	"flor.dev/flor/internal/obs/tracestore"
	"flor.dev/flor/internal/replay"
	"flor.dev/flor/internal/sched"
	"flor.dev/flor/internal/script"
	"flor.dev/flor/internal/store"
	"flor.dev/flor/internal/store/cachetier"
	"flor.dev/flor/internal/store/remote"
)

// Typed query failures; the HTTP layer maps them to status codes.
var (
	// ErrUnknownRun is returned for an unregistered run ID (404).
	ErrUnknownRun = errors.New("serve: unknown run")
	// ErrUnknownTrace is returned for a replay trace ID the run's trace ring
	// no longer holds (404).
	ErrUnknownTrace = errors.New("serve: unknown trace")
	// ErrUnknownProbe is returned for a probe name the run does not
	// register (400).
	ErrUnknownProbe = errors.New("serve: unknown probe")
	// ErrBadRequest is returned for malformed query parameters (unknown
	// scheduler/init names, empty or out-of-range iteration lists) (400).
	ErrBadRequest = errors.New("serve: bad request")
	// ErrBusy is returned when a run's wait queue is full (429).
	ErrBusy = errors.New("serve: run queue full")
	// ErrQueueTimeout is returned when a queued query's deadline expires
	// before an in-flight slot frees up (504).
	ErrQueueTimeout = errors.New("serve: queue deadline exceeded")
	// ErrDraining is returned once Shutdown has begun: the daemon finishes
	// in-flight queries but accepts no new work (503).
	ErrDraining = errors.New("serve: draining")
)

// RunConfig registers one recording with the daemon.
type RunConfig struct {
	// ID names the run in the HTTP API.
	ID string
	// Dir is the recorded run directory (opened read-only, lazily, on the
	// first query).
	Dir string
	// Factories maps probe names to program factories: "base" (or "") is
	// conventionally the unprobed program; other entries are hindsight-
	// probed variants. Replays are Go closures, so probe variants must be
	// registered by the embedding program — HTTP clients select them by
	// name.
	Factories map[string]func() *script.Program
	// Remote serves the run from the daemon's shared remote object pool
	// (Options.Remote): registration fetches the run's control plane from
	// <pool>/<ID>/ctl/ into Dir (created if needed), and every pack read
	// routes through the remote backend and the chunk-cache tier. Dir is
	// then the run's local control-plane scratch, not a recorded run.
	Remote bool
}

// Options configures a Server. Zero values select the documented defaults.
type Options struct {
	// Addr is the listen address for ListenAndServe (default ":7707").
	Addr string
	// Slots is the global worker-pool budget shared by every query
	// (default GOMAXPROCS).
	Slots int
	// MaxInflightPerRun bounds concurrently executing queries per run
	// (default 2).
	MaxInflightPerRun int
	// MaxQueuePerRun bounds queries waiting for admission per run; beyond
	// it queries are rejected with ErrBusy. Zero selects the default (8);
	// negative disables queueing entirely, so queries beyond the in-flight
	// bound are rejected immediately.
	MaxQueuePerRun int
	// QueueTimeout bounds how long an admitted-queue query waits before
	// failing with ErrQueueTimeout (default 30s).
	QueueTimeout time.Duration
	// StoreCacheSize bounds the open-store LRU (default 8).
	StoreCacheSize int
	// PayloadCacheBytes bounds each store's cross-query decoded-payload
	// cache (default backmat.DefaultPayloadCacheBytes).
	PayloadCacheBytes int64
	// DefaultWorkers is the replay parallelism used when a query does not
	// ask for one (default 2).
	DefaultWorkers int
	// OnEvict, when set, observes store-cache evictions (tests, metrics).
	OnEvict func(runID string)
	// Library maps program names to probe-factory sets for HTTP
	// registration (POST /v1/runs): probes are Go closures, so remote
	// clients can only register directories against programs the embedder
	// has named here. An empty library disables HTTP registration.
	Library map[string]map[string]func() *script.Program
	// RegisterRoot confines HTTP registration to run directories under this
	// path. It must be set (alongside Library) for POST /v1/runs to work at
	// all: without the confinement, any client that can reach the listener
	// could make the daemon open and probe arbitrary server-side paths.
	// The Go-API Register is not confined — the embedder owns those paths.
	RegisterRoot string
	// TraceRing bounds each run's in-memory trace ring: a completed query's
	// span trace stays retrievable until TraceRing newer queries push it out
	// (default 16). Evictions count into flor_serve_traces_dropped_total.
	TraceRing int
	// TraceDir, when set, persists query traces to a durable trace store
	// under this directory (internal/obs/tracestore): traces survive daemon
	// restarts and outlive the ring, subject to the retention knobs below.
	TraceDir string
	// TraceSampleN head-samples persisted traces: 1 in N is kept (<= 1 keeps
	// all). Slow queries always persist regardless. Ring retention is not
	// sampled.
	TraceSampleN int
	// SlowQueryThreshold flags queries whose wall time meets or exceeds it:
	// they bypass trace sampling, land in the trace store's slow-query log
	// with full span detail, and count into flor_serve_slow_queries_total.
	// Zero disables slow-query capture.
	SlowQueryThreshold time.Duration
	// TraceStoreMaxBytes bounds the trace store's on-disk footprint
	// (default 16 MiB; oldest segments are pruned whole).
	TraceStoreMaxBytes int64
	// TraceStoreMaxAge prunes trace segments whose newest entry is older
	// than this (0 = no age pruning).
	TraceStoreMaxAge time.Duration
	// Remote points the daemon at a shared remote object pool — for the
	// bundled filesystem store, the pool's root directory. Empty disables
	// remote serving; RunConfig.Remote registrations then fail.
	Remote string
	// CacheDir is where the remote chunk-cache tier keeps its blocks;
	// empty keeps blocks in memory. The directory is cleared on startup.
	CacheDir string
	// CacheMaxBytes bounds the chunk-cache tier (default 256 MiB;
	// negative disables the cache tier, every read goes remote).
	CacheMaxBytes int64
	// Prefetch is the plan-driven readahead depth, in main-loop iterations,
	// for replay queries against remote-backed runs: each replay worker
	// keeps the chunk-cache tier warm that many iterations ahead of its
	// restore front, overlapping remote fetch with replay compute. Zero
	// disables speculation. Local runs are unaffected either way.
	Prefetch int
}

func (o *Options) fill() {
	if o.Addr == "" {
		o.Addr = ":7707"
	}
	if o.Slots <= 0 {
		o.Slots = runtime.GOMAXPROCS(0)
	}
	if o.MaxInflightPerRun <= 0 {
		o.MaxInflightPerRun = 2
	}
	if o.MaxQueuePerRun < 0 {
		o.MaxQueuePerRun = 0
	} else if o.MaxQueuePerRun == 0 {
		o.MaxQueuePerRun = 8
	}
	if o.QueueTimeout <= 0 {
		o.QueueTimeout = 30 * time.Second
	}
	if o.StoreCacheSize <= 0 {
		o.StoreCacheSize = 8
	}
	if o.DefaultWorkers <= 0 {
		o.DefaultWorkers = 2
	}
	if o.TraceRing <= 0 {
		o.TraceRing = defaultTraceRing
	}
	if o.CacheMaxBytes == 0 {
		o.CacheMaxBytes = 256 << 20
	}
}

// QueryCost summarizes the resources one query consumed: logical checkpoint
// bytes restored, time spent restoring them, and the fetch-tier attribution
// of every byte the store served (mmap / scatter-preadv / ranged reads vs
// the cross-query payload cache). Returned per query in replay and sample
// responses and accumulated per run in /v1/stats.
type QueryCost struct {
	RestoredBytes int64               `json:"restored_bytes"`
	RestoreNs     int64               `json:"restore_ns"`
	Fetch         store.FetchSnapshot `json:"fetch"`
}

func (c QueryCost) add(o QueryCost) QueryCost {
	return QueryCost{
		RestoredBytes: c.RestoredBytes + o.RestoredBytes,
		RestoreNs:     c.RestoreNs + o.RestoreNs,
		Fetch:         c.Fetch.Add(o.Fetch),
	}
}

// RunStats is one run's query accounting.
type RunStats struct {
	Replays       int64 `json:"replays"`
	Samples       int64 `json:"samples"`
	Errors        int64 `json:"errors"`
	Rejected      int64 `json:"rejected"`
	QueueTimeouts int64 `json:"queue_timeouts"`
	StoreHits     int64 `json:"store_hits"`
	StoreMisses   int64 `json:"store_misses"`
	// StaleRefreshes counts queries that hit a cached store whose pack
	// generations a GC had deleted (store.ErrStalePack) and recovered by
	// reopening the store and retrying once.
	StaleRefreshes int64 `json:"stale_refreshes"`
	// SlowQueries counts queries at or above Options.SlowQueryThreshold.
	SlowQueries int64 `json:"slow_queries"`
	// Cost accumulates the run's completed queries' resource summaries:
	// restored bytes, restore time, and per-tier fetch attribution.
	Cost     QueryCost `json:"cost"`
	QueueNs  int64     `json:"queue_ns"`
	Inflight int       `json:"inflight"`
	Queued   int       `json:"queued"`
	// OldestQueryAgeSeconds is how long the longest-running in-flight query
	// has been executing at snapshot time (0 when the run is idle).
	OldestQueryAgeSeconds float64 `json:"oldest_query_age_seconds,omitempty"`
}

// defaultTraceRing is the default per-run trace-ring capacity: each
// completed query's span trace is retrievable over HTTP until that many
// newer queries push it out (Options.TraceRing overrides).
const defaultTraceRing = 16

// run is one registered recording's serving state.
type run struct {
	cfg    RunConfig
	layout store.Layout // validated at registration
	// shardRoots pins the sharded store's pack roots as validated at
	// registration: opens fail rather than follow a later SHARDS rewrite.
	shardRoots []string
	// poolRoot pins a pooled run's chunk-pool root the same way ("" for
	// private-pack runs). Runs sharing a poolRoot form a project group:
	// their stores resolve chunks through one pool and their queries share
	// one decoded-payload cache.
	poolRoot string
	sem      chan struct{} // in-flight bound

	ringCap int // trace-ring capacity (Options.TraceRing)

	mu       sync.Mutex
	queued   int
	inflight int // queries holding a sem slot; guarded by mu so Stats can't tear
	// inflightAt tracks each in-flight query's start time by an opaque
	// token, so Stats can report the longest-running query's age.
	inflightAt  map[int]time.Time
	inflightTok int
	stats       RunStats
	traceSeq    int
	traces      []replayTrace // ring, newest last, at most ringCap

	// Per-run metric handles, resolved once at registration (nil no-ops
	// while the registry is disabled).
	mReplays       *obs.Counter
	mSamples       *obs.Counter
	mRejected      *obs.Counter
	mQueueTimeouts *obs.Counter
	mErrors        *obs.Counter
	mTracesDropped *obs.Counter
	mSlowQueries   *obs.Counter
	mQueueDepth    *obs.Gauge
	mInflight      *obs.Gauge
}

// replayTrace is one retained replay trace.
type replayTrace struct {
	id string
	tr *obs.Trace
}

// keepTrace retains a completed query's trace: it assigns the next trace ID,
// appends the trace to the run's ring (counting evictions), flags slow
// queries, and — when a durable trace store is configured — persists the
// full span detail so the trace survives ring eviction and daemon restarts.
func (s *Server) keepTrace(r *run, kind string, tr *obs.Trace, start time.Time, durNs int64, slow bool) string {
	r.mu.Lock()
	r.traceSeq++
	id := fmt.Sprintf("t%06d", r.traceSeq)
	r.traces = append(r.traces, replayTrace{id: id, tr: tr})
	dropped := len(r.traces) - r.ringCap
	if dropped > 0 {
		r.traces = r.traces[dropped:]
	}
	if slow {
		r.stats.SlowQueries++
	}
	r.mu.Unlock()
	if dropped > 0 {
		r.mTracesDropped.Add(int64(dropped))
	}
	if slow {
		r.mSlowQueries.Inc()
	}
	if s.traces != nil {
		// Best-effort durability: a full disk must not fail the query whose
		// result is already computed; the ring still serves the trace.
		_, _ = s.traces.Append(tracestore.Entry{
			TraceID:     id,
			Run:         r.cfg.ID,
			Kind:        kind,
			StartUnixNs: start.UnixNano(),
			DurNs:       durNs,
			Slow:        slow,
			Spans:       tr.Spans(),
		})
	}
	return id
}

// trace looks a retained trace up by ID.
func (r *run) trace(id string) (*obs.Trace, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, t := range r.traces {
		if t.id == id {
			return t.tr, true
		}
	}
	return nil, false
}

func (r *run) factory(probe string) (func() *script.Program, error) {
	if probe == "" {
		probe = "base"
	}
	if f, ok := r.cfg.Factories[probe]; ok {
		return f, nil
	}
	if probe == "base" {
		if f, ok := r.cfg.Factories[""]; ok {
			return f, nil
		}
	}
	return nil, fmt.Errorf("%w: %q for run %q", ErrUnknownProbe, probe, r.cfg.ID)
}

// probes returns the run's registered probe names, sorted, "" shown as
// "base".
func (r *run) probes() []string {
	out := make([]string, 0, len(r.cfg.Factories))
	for name := range r.cfg.Factories {
		if name == "" {
			name = "base"
		}
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Server is the flord daemon. Construct with New, register recordings, then
// expose Handler (or ListenAndServe). Shutdown drains gracefully: new work
// is refused with ErrDraining while in-flight queries finish.
type Server struct {
	opts   Options
	pool   *sched.Pool
	stores *storeCache
	// traces is the durable trace store (nil unless Options.TraceDir is
	// set); traceErr records a failed open so the operator can surface it.
	traces   *tracestore.Store
	traceErr error

	// remote is the shared object pool (nil unless Options.Remote is set),
	// already wrapped with the retry policy; chunkCache is the local
	// read-through cache tier in front of it (nil when disabled);
	// remoteErr records a failed setup, surfaced on remote registration.
	remote     remote.ObjectStore
	chunkCache *cachetier.Cache
	remoteErr  error

	// reg is the metrics registry as of construction (nil when disabled);
	// /metrics renders it. Per-run and per-route handles resolve from the
	// same package-level default, so enabling obs after New leaves the
	// server dark — flord enables before constructing anything.
	reg *obs.Registry
	// inflightN counts queries between beginQuery and done across all runs;
	// drain logging reads it without touching per-run locks.
	inflightN atomic.Int64

	mQuerySeconds  map[string]*obs.Histogram // by kind: replay | sample
	mDrainingGauge *obs.Gauge

	mu       sync.Mutex
	runs     map[string]*run
	order    []string
	draining bool
	inflight sync.WaitGroup
	httpSrv  *http.Server
}

// New returns a Server with the given options (zero value = defaults).
func New(opts Options) *Server {
	opts.fill()
	s := &Server{
		opts: opts,
		pool: sched.NewPool(opts.Slots),
		runs: map[string]*run{},
		reg:  obs.Default(),
		mQuerySeconds: map[string]*obs.Histogram{
			"replay": obs.H(obs.MServeQuerySeconds, obs.L("kind", "replay")),
			"sample": obs.H(obs.MServeQuerySeconds, obs.L("kind", "sample")),
		},
		mDrainingGauge: obs.G(obs.MServeDraining),
	}
	s.stores = newStoreCache(opts.StoreCacheSize, opts.PayloadCacheBytes, opts.OnEvict)
	if opts.TraceDir != "" {
		ts, err := tracestore.Open(tracestore.Options{
			Dir:           opts.TraceDir,
			MaxTotalBytes: opts.TraceStoreMaxBytes,
			MaxAge:        opts.TraceStoreMaxAge,
			SampleN:       opts.TraceSampleN,
		})
		if err != nil {
			// Degrade to ring-only tracing rather than fail construction;
			// TraceStoreErr and /v1/stats surface the misconfiguration.
			s.traceErr = err
		} else {
			s.traces = ts
		}
	}
	if opts.Remote != "" {
		fs, err := remote.NewFSStore(opts.Remote)
		if err != nil {
			s.remoteErr = err
		} else {
			s.remote = remote.Retry(fs, remote.Policy{})
			if opts.CacheMaxBytes > 0 {
				cache, err := cachetier.New(opts.CacheDir, opts.CacheMaxBytes)
				if err != nil {
					s.remote, s.remoteErr = nil, err
				} else {
					s.chunkCache = cache
				}
			}
		}
	}
	return s
}

// TraceStoreErr reports a failed durable-trace-store open (nil when the
// store opened, or none was configured). The daemon still serves — with
// ring-only tracing — but operators should treat this as a config error.
func (s *Server) TraceStoreErr() error { return s.traceErr }

// SlowQueries returns up to limit entries from the durable slow-query log,
// newest first (nil without a trace store).
func (s *Server) SlowQueries(limit int) []tracestore.Entry {
	if s.traces == nil {
		return nil
	}
	return s.traces.Slow(limit)
}

// Pool exposes the shared worker pool (stats, embedding).
func (s *Server) Pool() *sched.Pool { return s.pool }

// Register adds a recording to the registry. The run directory must exist
// and carry a store layout this build understands — a directory recorded by
// a future layout (or with a corrupt FORMAT marker) is rejected here as a
// bad request, not discovered as a 500 by the first query. Pooled runs are
// grouped by their chunk pool's root, which is validated and pinned here.
// The store itself is still opened lazily on the first query.
func (s *Server) Register(cfg RunConfig) error {
	if cfg.Remote {
		if err := s.fetchRemoteRun(cfg); err != nil {
			return err
		}
		// The fetched control plane has no SHARDS file (pack reads route
		// through the object backend) and must not be pooled (pooled stores
		// refuse backend overrides), so both pins are empty by construction.
		return s.registerPinned(cfg, nil, "")
	}
	shardRoots, err := store.ShardRoots(cfg.Dir)
	if err != nil {
		return fmt.Errorf("%w: register %q: %v", ErrBadRequest, cfg.ID, err)
	}
	poolRoot, _, err := store.PoolRef(cfg.Dir)
	if err != nil {
		return fmt.Errorf("%w: register %q: %v", ErrBadRequest, cfg.ID, err)
	}
	return s.registerPinned(cfg, shardRoots, poolRoot)
}

// fetchRemoteRun materializes a remote run's control plane into cfg.Dir so
// the normal registration validation (layout detection, IsRecording) runs
// against real files; pack bytes stay remote.
func (s *Server) fetchRemoteRun(cfg RunConfig) error {
	if s.remote == nil {
		if s.remoteErr != nil {
			return fmt.Errorf("serve: register %q: remote pool: %w", cfg.ID, s.remoteErr)
		}
		return fmt.Errorf("%w: register %q: no remote pool configured", ErrBadRequest, cfg.ID)
	}
	if cfg.ID == "" || cfg.Dir == "" {
		return fmt.Errorf("%w: register remote run: ID and Dir are required", ErrBadRequest)
	}
	if _, err := remote.FetchControlPlane(s.remote, cfg.ID, cfg.Dir); err != nil {
		if errors.Is(err, remote.ErrNotFound) {
			return fmt.Errorf("%w: register %q: %v", ErrBadRequest, cfg.ID, err)
		}
		return fmt.Errorf("serve: register %q: %w", cfg.ID, err)
	}
	if poolRoot, _, err := store.PoolRef(cfg.Dir); err != nil {
		return fmt.Errorf("%w: register %q: %v", ErrBadRequest, cfg.ID, err)
	} else if poolRoot != "" {
		return fmt.Errorf("%w: register %q: pooled runs cannot be served remotely", ErrBadRequest, cfg.ID)
	}
	return nil
}

// registerPinned is Register with the shard and pool roots already read
// (exactly once): HTTP registration validates confinement and pins from the
// same read, so a SHARDS or manifest rewrite between check and pin cannot
// slip through.
func (s *Server) registerPinned(cfg RunConfig, shardRoots []string, poolRoot string) error {
	if cfg.ID == "" {
		return fmt.Errorf("%w: register: empty run ID", ErrBadRequest)
	}
	if len(cfg.Factories) == 0 {
		return fmt.Errorf("%w: register %q: no program factories", ErrBadRequest, cfg.ID)
	}
	if st, err := os.Stat(cfg.Dir); errors.Is(err, os.ErrNotExist) {
		// A typo'd path is the client's mistake, like any other bad dir.
		return fmt.Errorf("%w: register %q: %v", ErrBadRequest, cfg.ID, err)
	} else if err != nil {
		return fmt.Errorf("serve: register %q: %w", cfg.ID, err)
	} else if !st.IsDir() {
		return fmt.Errorf("%w: register %q: %s is not a directory", ErrBadRequest, cfg.ID, cfg.Dir)
	}
	layout, err := store.DetectLayout(cfg.Dir)
	if err != nil {
		if errors.Is(err, store.ErrUnknownFormat) {
			// The typed error carries the detected marker; surface it so the
			// client learns which layout the directory claims.
			return fmt.Errorf("%w: register %q: %v", ErrBadRequest, cfg.ID, err)
		}
		return fmt.Errorf("serve: register %q: %w", cfg.ID, err)
	}
	if !core.IsRecording(cfg.Dir) {
		// An empty or unrelated directory would detect as a fresh v2 store
		// and then 500 on the first query; reject it now instead. (A missing
		// checkpoint manifest alone is fine — adaptive record runs can
		// materialize zero checkpoints and still replay.)
		return fmt.Errorf("%w: register %q: %s is not a recorded run directory", ErrBadRequest, cfg.ID, cfg.Dir)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return fmt.Errorf("%w: register %q", ErrDraining, cfg.ID)
	}
	if _, dup := s.runs[cfg.ID]; dup {
		return fmt.Errorf("%w: register: duplicate run ID %q", ErrBadRequest, cfg.ID)
	}
	id := obs.L("run", cfg.ID)
	rn := &run{
		cfg: cfg, layout: layout, shardRoots: shardRoots, poolRoot: poolRoot,
		sem:            make(chan struct{}, s.opts.MaxInflightPerRun),
		ringCap:        s.opts.TraceRing,
		inflightAt:     map[int]time.Time{},
		mReplays:       obs.C(obs.MServeQueries, id, obs.L("kind", "replay")),
		mSamples:       obs.C(obs.MServeQueries, id, obs.L("kind", "sample")),
		mRejected:      obs.C(obs.MServeRejected, id),
		mQueueTimeouts: obs.C(obs.MServeQueueTimeouts, id),
		mErrors:        obs.C(obs.MServeErrors, id),
		mTracesDropped: obs.C(obs.MServeTracesDropped, id),
		mSlowQueries:   obs.C(obs.MServeSlowQueries, id),
		mQueueDepth:    obs.G(obs.MServeQueueDepth, id),
		mInflight:      obs.G(obs.MServeInflight, id),
	}
	if s.traces != nil {
		// Seed the trace-ID sequence past anything already persisted for
		// this run, so IDs stay unique across daemon restarts and a new
		// query can never shadow a durable older trace.
		rn.traceSeq = s.traces.LastSeq(cfg.ID)
	}
	s.runs[cfg.ID] = rn
	s.order = append(s.order, cfg.ID)
	return nil
}

// beginQuery gates a query on the drain state and tracks it for Shutdown's
// wait; the returned func must be called when the query finishes.
func (s *Server) beginQuery() (func(), error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	s.inflight.Add(1)
	s.inflightN.Add(1)
	return func() {
		s.inflightN.Add(-1)
		s.inflight.Done()
	}, nil
}

// InflightQueries returns how many queries are currently between admission
// gate and completion, daemon-wide — what a graceful drain waits for.
func (s *Server) InflightQueries() int64 { return s.inflightN.Load() }

// Shutdown drains the daemon: registrations and queries begun after this
// call fail with ErrDraining (HTTP 503), the embedded listener (if
// ListenAndServe started one) stops accepting, in-flight queries run to
// completion up to ctx's deadline, and the open stores are released. It
// returns ctx.Err() if the deadline expired with queries still running.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	hs := s.httpSrv
	s.mu.Unlock()
	s.mDrainingGauge.Set(1)
	if hs != nil {
		// Stop the listener first so no request can race past the drain
		// check while we wait. http.Server.Shutdown itself waits for active
		// handlers, bounded by the same ctx.
		_ = hs.Shutdown(ctx)
	}
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	// Release the hot stores only after the drain (or deadline): in-flight
	// queries keep their entries alive regardless, but new opens are over.
	s.stores.clear()
	// Seal the durable trace store after the drain so completed queries'
	// traces land; a query still running past the deadline loses only its
	// trace persistence (Append on a closed store errors, best-effort).
	if s.traces != nil {
		_ = s.traces.Close()
	}
	return err
}

// RegisterByName registers a recorded directory against a named program
// from the server's Library — the HTTP registration path (POST /v1/runs).
// The directory must live under Options.RegisterRoot; unknown program
// names, escaping paths, and bad directories are client errors.
func (s *Server) RegisterByName(id, dir, program string) error {
	if len(s.opts.Library) == 0 {
		return fmt.Errorf("%w: this server has no program library; register runs through the embedding API", ErrBadRequest)
	}
	if s.opts.RegisterRoot == "" {
		return fmt.Errorf("%w: HTTP registration disabled (no register root configured)", ErrBadRequest)
	}
	root, err := filepath.Abs(s.opts.RegisterRoot)
	if err != nil {
		return fmt.Errorf("serve: register root: %w", err)
	}
	// Relative request paths resolve against the register root — the only
	// base the client knows about — never the daemon's working directory.
	abs := dir
	if !filepath.IsAbs(abs) {
		abs = filepath.Join(root, abs)
	}
	// The containment check must run on resolved paths: a lexical Rel alone
	// would let a symlink under the root point the daemon anywhere.
	// Nonexistent or unresolvable paths count as outside — for the run dir
	// itself that is the client's mistake (the directory must exist).
	root, err = filepath.EvalSymlinks(root)
	if err != nil {
		return fmt.Errorf("serve: register root: %w", err)
	}
	outside := func(p string) bool {
		resolved, err := filepath.EvalSymlinks(p)
		if err != nil {
			return true
		}
		rel, err := filepath.Rel(root, resolved)
		return err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator))
	}
	if outside(abs) {
		return fmt.Errorf("%w: register %q: directory missing or outside the register root", ErrBadRequest, id)
	}
	// A sharded run's packs live wherever its SHARDS file says, and a
	// pooled run's wherever its manifest's pool reference says — confine
	// those roots too, or a planted SHARDS file or manifest would point the
	// daemon's reads outside the register root. The same single read is
	// what gets pinned: checking one read and pinning another would leave a
	// window for a rewrite in between.
	shardRoots, err := store.ShardRoots(abs)
	if err != nil {
		return fmt.Errorf("%w: register %q: %v", ErrBadRequest, id, err)
	}
	for _, r := range shardRoots {
		if outside(r) {
			return fmt.Errorf("%w: register %q: shard root %q outside the register root", ErrBadRequest, id, r)
		}
	}
	poolRoot, pooled, err := store.PoolRef(abs)
	if err != nil {
		return fmt.Errorf("%w: register %q: %v", ErrBadRequest, id, err)
	}
	if pooled && outside(poolRoot) {
		return fmt.Errorf("%w: register %q: pool root %q outside the register root", ErrBadRequest, id, poolRoot)
	}
	dir = abs
	factories, ok := s.opts.Library[program]
	if !ok {
		names := make([]string, 0, len(s.opts.Library))
		for name := range s.opts.Library {
			names = append(names, name)
		}
		sort.Strings(names)
		return fmt.Errorf("%w: unknown program %q (library has %s)", ErrBadRequest, program, strings.Join(names, ", "))
	}
	return s.registerPinned(RunConfig{ID: id, Dir: dir, Factories: factories}, shardRoots, poolRoot)
}

func (s *Server) run(id string) (*run, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.runs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownRun, id)
	}
	return r, nil
}

// admit applies the run's admission control: a fast path into an in-flight
// slot, else a bounded wait queue with a deadline. On success it returns a
// release closure and the time spent queued.
//
// The in-flight count is mirrored into r.inflight under r.mu (rather than
// read from len(r.sem)) so Stats can snapshot a run's counters and gauges
// under one lock acquisition without tearing.
func (s *Server) admit(ctx context.Context, r *run) (release func(), queueNs int64, err error) {
	enter := func() func() {
		r.mu.Lock()
		r.inflight++
		r.inflightTok++
		tok := r.inflightTok
		r.inflightAt[tok] = time.Now()
		r.mu.Unlock()
		r.mInflight.Add(1)
		return func() {
			r.mu.Lock()
			r.inflight--
			delete(r.inflightAt, tok)
			r.mu.Unlock()
			r.mInflight.Add(-1)
			<-r.sem
		}
	}
	// Fast path: an in-flight slot is free right now.
	select {
	case r.sem <- struct{}{}:
		return enter(), 0, nil
	default:
	}
	r.mu.Lock()
	if r.queued >= s.opts.MaxQueuePerRun {
		r.stats.Rejected++
		r.mu.Unlock()
		r.mRejected.Inc()
		return nil, 0, fmt.Errorf("%w: run %q (%d queued)", ErrBusy, r.cfg.ID, s.opts.MaxQueuePerRun)
	}
	r.queued++
	r.mu.Unlock()
	r.mQueueDepth.Add(1)
	leaveQueue := func() {
		r.mu.Lock()
		r.queued--
		r.mu.Unlock()
		r.mQueueDepth.Add(-1)
	}

	t0 := time.Now()
	timer := time.NewTimer(s.opts.QueueTimeout)
	defer timer.Stop()
	select {
	case r.sem <- struct{}{}:
		leaveQueue()
		queueNs = time.Since(t0).Nanoseconds()
		r.mu.Lock()
		r.stats.QueueNs += queueNs
		r.mu.Unlock()
		return enter(), queueNs, nil
	case <-timer.C:
		leaveQueue()
		r.mu.Lock()
		r.stats.QueueTimeouts++
		r.mu.Unlock()
		r.mQueueTimeouts.Inc()
		return nil, 0, fmt.Errorf("%w: run %q after %v", ErrQueueTimeout, r.cfg.ID, s.opts.QueueTimeout)
	case <-ctx.Done():
		leaveQueue()
		return nil, 0, ctx.Err()
	}
}

// open resolves the run's shared store entry through the LRU, folding the
// hit/miss into the run's stats. Local runs open pinned to the roots
// registration validated; remote runs open through the object backend and
// the shared chunk-cache tier.
func (s *Server) open(r *run) (*cacheEntry, bool, error) {
	load := func() (*replay.Recording, error) {
		if r.cfg.Remote {
			backend := remote.NewObjectBackend(s.remote, remote.PacksPrefix(r.cfg.ID), s.chunkCache)
			return core.LoadRecordingWith(r.cfg.Dir, store.Options{ReadOnly: true, Backend: backend})
		}
		return core.LoadRecordingSharedPinned(r.cfg.Dir, r.shardRoots, r.poolRoot)
	}
	ent, hit, err := s.stores.get(r.cfg.ID, r.poolRoot, load)
	r.mu.Lock()
	if err != nil {
		r.stats.Errors++
	} else if hit {
		r.stats.StoreHits++
	} else {
		r.stats.StoreMisses++
	}
	r.mu.Unlock()
	if err != nil {
		r.mErrors.Inc()
	}
	return ent, hit, err
}

// refreshStale recovers a query that failed with store.ErrStalePack: the
// cached read-only store resolved its chunk locations before a GC retired —
// and, past the grace period (store.GCOptions.PackRetention), deleted —
// their pack generation. The recording on disk is intact; only the cached
// open is outdated. Drop the entry, reopen, and hand back the fresh entry
// so the caller can retry the query exactly once.
func (s *Server) refreshStale(r *run) (*cacheEntry, error) {
	s.stores.drop(r.cfg.ID)
	ent, _, err := s.open(r)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.stats.StaleRefreshes++
	r.mu.Unlock()
	return ent, nil
}

// ReplayRequest is a full replay query.
type ReplayRequest struct {
	// Probe selects a registered probe variant ("base" when empty).
	Probe string `json:"probe"`
	// Workers is the hindsight parallelism G (server default when <= 0).
	// Actual concurrency is additionally bounded by the shared pool.
	Workers int `json:"workers"`
	// Scheduler is "static", "balanced" or "stealing" ("balanced" default).
	Scheduler string `json:"scheduler"`
	// Init is "strong" or "weak" ("weak" default: daemon replays jump to
	// checkpoints).
	Init string `json:"init"`
}

// ReplayResponse reports a replay query.
type ReplayResponse struct {
	RunID     string   `json:"run_id"`
	Probe     string   `json:"probe"`
	Logs      []string `json:"logs"`
	Anomalies int      `json:"anomalies"`
	Workers   int      `json:"workers"`
	Scheduler string   `json:"scheduler"`
	Steals    int      `json:"steals"`
	CFactor   float64  `json:"c_factor"`
	WallNs    int64    `json:"wall_ns"`
	QueueNs   int64    `json:"queue_ns"`
	StoreHit  bool     `json:"store_hit"`
	// Cost attributes the replay's restored bytes to store fetch tiers and
	// totals its restore work.
	Cost QueryCost `json:"cost"`
	// TraceID names this replay's span trace, retrievable via
	// GET /v1/runs/{id}/trace/{trace_id}: from the run's trace ring until
	// Options.TraceRing newer queries push it out, and from the durable
	// trace store (when configured) after that — across daemon restarts.
	TraceID string `json:"trace_id,omitempty"`
}

// Replay serves one replay query through admission control, the shared
// store, and the shared worker pool.
func (s *Server) Replay(ctx context.Context, runID string, req ReplayRequest) (*ReplayResponse, error) {
	done, err := s.beginQuery()
	if err != nil {
		return nil, err
	}
	defer done()
	r, err := s.run(runID)
	if err != nil {
		return nil, err
	}
	factory, err := r.factory(req.Probe)
	if err != nil {
		return nil, err
	}
	schedPolicy, err := parseScheduler(req.Scheduler)
	if err != nil {
		return nil, err
	}
	init, err := parseInit(req.Init)
	if err != nil {
		return nil, err
	}
	release, queueNs, err := s.admit(ctx, r)
	if err != nil {
		return nil, err
	}
	defer release()
	ent, hit, err := s.open(r)
	if err != nil {
		return nil, err
	}
	workers := req.Workers
	if workers <= 0 {
		workers = s.opts.DefaultWorkers
	}
	// The queue deadline also bounds shared-pool slot waits: an admitted
	// query must not hold one of the run's in-flight slots forever while
	// its workers starve behind other queries' segments.
	slotCtx, cancel := context.WithTimeout(ctx, s.opts.QueueTimeout)
	defer cancel()
	tr := obs.NewTrace()
	t0 := time.Now()
	doReplay := func(ent *cacheEntry) (*replay.Result, error) {
		return replay.Replay(ent.rec, factory, replay.Options{
			Workers:   workers,
			Scheduler: schedPolicy,
			Init:      init,
			Slots:     s.pool,
			Ctx:       slotCtx,
			Cache:     ent.cache,
			Trace:     tr,
			Prefetch:  s.opts.Prefetch,
		})
	}
	res, err := doReplay(ent)
	if err != nil && errors.Is(err, store.ErrStalePack) {
		if fresh, rerr := s.refreshStale(r); rerr == nil {
			ent, hit = fresh, false
			res, err = doReplay(ent)
		}
	}
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			r.mu.Lock()
			r.stats.QueueTimeouts++
			r.mu.Unlock()
			r.mQueueTimeouts.Inc()
			return nil, fmt.Errorf("%w: replay %q waited on worker slots beyond %v", ErrQueueTimeout, runID, s.opts.QueueTimeout)
		}
		r.mu.Lock()
		r.stats.Errors++
		r.mu.Unlock()
		r.mErrors.Inc()
		return nil, fmt.Errorf("serve: replay %q: %w", runID, err)
	}
	durNs := time.Since(t0).Nanoseconds()
	var cost QueryCost
	for _, wr := range res.Workers {
		cost.RestoredBytes += wr.RestoredBytes
		cost.RestoreNs += wr.RestoreNs
		cost.Fetch = cost.Fetch.Add(wr.Fetch)
	}
	slow := s.opts.SlowQueryThreshold > 0 && durNs >= s.opts.SlowQueryThreshold.Nanoseconds()
	r.mu.Lock()
	r.stats.Replays++
	r.stats.Cost = r.stats.Cost.add(cost)
	r.mu.Unlock()
	r.mReplays.Inc()
	traceID := s.keepTrace(r, "replay", tr, t0, durNs, slow)
	// The exemplar ties the latency bucket back to a retrievable trace.
	s.mQuerySeconds["replay"].ObserveNsExemplar(durNs, traceID)
	return &ReplayResponse{
		RunID:     runID,
		Probe:     req.Probe,
		Logs:      res.Logs,
		Anomalies: len(res.Anomalies),
		Workers:   len(res.Workers),
		Scheduler: res.Scheduler.String(),
		Steals:    res.Steals,
		CFactor:   res.CFactor,
		WallNs:    res.WallNs,
		QueueNs:   queueNs,
		StoreHit:  hit,
		Cost:      cost,
		TraceID:   traceID,
	}, nil
}

// SampleRequest is an iteration-sampling query (point reads over the past).
type SampleRequest struct {
	Probe      string `json:"probe"`
	Iterations []int  `json:"iterations"`
}

// SampleResponse reports a sample query.
type SampleResponse struct {
	RunID      string   `json:"run_id"`
	Probe      string   `json:"probe"`
	Iterations []int    `json:"iterations"`
	Logs       []string `json:"logs"`
	WallNs     int64    `json:"wall_ns"`
	QueueNs    int64    `json:"queue_ns"`
	StoreHit   bool     `json:"store_hit"`
	// Cost attributes the sample's restored bytes to store fetch tiers.
	Cost QueryCost `json:"cost"`
	// TraceID names this sample's span trace, retrievable like a replay's
	// via GET /v1/runs/{id}/trace/{trace_id}.
	TraceID string `json:"trace_id,omitempty"`
}

// Sample serves one sampling query; its single slot is priced cheaply, so
// the pool lets it overtake queued full-replay workers.
func (s *Server) Sample(ctx context.Context, runID string, req SampleRequest) (*SampleResponse, error) {
	return s.sample(ctx, runID, req, nil)
}

// SampleChunk is one streamed unit of a sampling query: a replayed
// iteration and its log lines.
type SampleChunk struct {
	Iteration int      `json:"iteration"`
	Logs      []string `json:"logs"`
}

// SampleStream is Sample with incremental delivery: emit receives each
// sampled iteration's logs as soon as that iteration has replayed, so a
// very long sample surfaces results immediately and the caller never
// buffers more than one iteration. The HTTP layer streams the chunks with
// chunked transfer encoding. An emit error aborts the query.
func (s *Server) SampleStream(ctx context.Context, runID string, req SampleRequest, emit func(SampleChunk) error) (*SampleResponse, error) {
	if emit == nil {
		return nil, fmt.Errorf("%w: stream sample without an emit callback", ErrBadRequest)
	}
	return s.sample(ctx, runID, req, emit)
}

func (s *Server) sample(ctx context.Context, runID string, req SampleRequest, emit func(SampleChunk) error) (*SampleResponse, error) {
	done, err := s.beginQuery()
	if err != nil {
		return nil, err
	}
	defer done()
	r, err := s.run(runID)
	if err != nil {
		return nil, err
	}
	factory, err := r.factory(req.Probe)
	if err != nil {
		return nil, err
	}
	if len(req.Iterations) == 0 {
		return nil, fmt.Errorf("%w: sample %q: no iterations requested", ErrBadRequest, runID)
	}
	release, queueNs, err := s.admit(ctx, r)
	if err != nil {
		return nil, err
	}
	defer release()
	ent, hit, err := s.open(r)
	if err != nil {
		return nil, err
	}
	slotCtx, cancel := context.WithTimeout(ctx, s.opts.QueueTimeout)
	defer cancel()
	emitted := 0
	var rawEmit func(int, []string) error
	if emit != nil {
		rawEmit = func(it int, logs []string) error {
			emitted++
			return emit(SampleChunk{Iteration: it, Logs: logs})
		}
	}
	tr := obs.NewTrace()
	t0 := time.Now()
	doSample := func(ent *cacheEntry) (*replay.SampleResult, error) {
		return replay.ReplaySampleStream(ent.rec, factory, req.Iterations, replay.SampleOptions{
			Cache: ent.cache,
			Slots: s.pool,
			Ctx:   slotCtx,
			Trace: tr,
		}, rawEmit)
	}
	res, err := doSample(ent)
	// The retry is only safe while nothing has streamed: chunks already
	// delivered to the client must not be re-emitted by a second attempt.
	if err != nil && errors.Is(err, store.ErrStalePack) && emitted == 0 {
		if fresh, rerr := s.refreshStale(r); rerr == nil {
			ent, hit = fresh, false
			res, err = doSample(ent)
		}
	}
	if err != nil {
		// Out-of-range iterations are the client's mistake, not a serving
		// failure: report 400 and keep them out of the error counters.
		if errors.Is(err, replay.ErrSampleRange) {
			return nil, fmt.Errorf("%w: sample %q: %v", ErrBadRequest, runID, err)
		}
		if errors.Is(err, context.DeadlineExceeded) {
			r.mu.Lock()
			r.stats.QueueTimeouts++
			r.mu.Unlock()
			r.mQueueTimeouts.Inc()
			return nil, fmt.Errorf("%w: sample %q waited on a worker slot beyond %v", ErrQueueTimeout, runID, s.opts.QueueTimeout)
		}
		r.mu.Lock()
		r.stats.Errors++
		r.mu.Unlock()
		r.mErrors.Inc()
		return nil, fmt.Errorf("serve: sample %q: %w", runID, err)
	}
	durNs := time.Since(t0).Nanoseconds()
	cost := QueryCost{RestoredBytes: res.RestoredBytes, RestoreNs: res.RestoreNs, Fetch: res.Fetch}
	slow := s.opts.SlowQueryThreshold > 0 && durNs >= s.opts.SlowQueryThreshold.Nanoseconds()
	r.mu.Lock()
	r.stats.Samples++
	r.stats.Cost = r.stats.Cost.add(cost)
	r.mu.Unlock()
	r.mSamples.Inc()
	traceID := s.keepTrace(r, "sample", tr, t0, durNs, slow)
	s.mQuerySeconds["sample"].ObserveNsExemplar(durNs, traceID)
	return &SampleResponse{
		RunID:      runID,
		Probe:      req.Probe,
		Iterations: res.Iterations,
		Logs:       res.Logs,
		WallNs:     res.WallNs,
		QueueNs:    queueNs,
		StoreHit:   hit,
		Cost:       cost,
		TraceID:    traceID,
	}, nil
}

// WarmResponse reports a warm-up request: how many checkpoint keys were
// hinted to the prefetcher (0 for local runs, whose reads gain nothing from
// warming).
type WarmResponse struct {
	RunID  string `json:"run_id"`
	Hinted int    `json:"hinted"`
}

// WarmRun speculatively pulls a remote-backed run's entire committed
// checkpoint set into the daemon's chunk-cache tier, so a later cold query
// restores at cache speed instead of paying first-touch remote GETs. The
// warm runs synchronously to completion as a background task (its spans are
// visible at /v1/debug/tasks) but outside per-run admission control:
// warming is maintenance and must not occupy the run's in-flight query
// slots. Local runs warm nothing and report zero hints.
func (s *Server) WarmRun(runID string) (*WarmResponse, error) {
	done, err := s.beginQuery() // drain gating: a shutdown must not race a warm
	if err != nil {
		return nil, err
	}
	defer done()
	r, err := s.run(runID)
	if err != nil {
		return nil, err
	}
	ent, _, err := s.open(r)
	if err != nil {
		return nil, err
	}
	task := obs.BeginTask("warm")
	defer task.End()
	pf := ent.rec.Store.NewPrefetcher(0, task.Trace())
	if pf == nil {
		return &WarmResponse{RunID: runID}, nil
	}
	defer pf.Close()
	metas := ent.rec.Store.Metas()
	keys := make([]store.Key, 0, len(metas))
	for _, m := range metas {
		keys = append(keys, m.Key)
	}
	pf.Hint(keys...)
	pf.Drain()
	return &WarmResponse{RunID: runID, Hinted: len(keys)}, nil
}

// RunInfo describes one registered run for listings.
type RunInfo struct {
	ID     string   `json:"id"`
	Dir    string   `json:"dir"`
	Probes []string `json:"probes"`
	Open   bool     `json:"open"` // store currently in the LRU
	// Format is the store layout detected at registration ("v1", "v2",
	// "v2-sharded/16", "v2-pooled/16").
	Format string `json:"format"`
	// Shards is the chunk-pack fanout (0 for v1, 1 for unsharded v2).
	Shards int `json:"shards"`
	// Pool is the resolved chunk-pool root for pooled runs ("" otherwise);
	// runs sharing it form one project group.
	Pool string `json:"pool,omitempty"`
}

// Runs lists registered runs in registration order.
func (s *Server) Runs() []RunInfo {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]RunInfo, 0, len(ids))
	for _, id := range ids {
		r, err := s.run(id)
		if err != nil {
			continue
		}
		out = append(out, RunInfo{
			ID:     id,
			Dir:    r.cfg.Dir,
			Probes: r.probes(),
			Open:   s.stores.contains(id),
			Format: r.layout.String(),
			Shards: r.layout.ShardFanout,
			Pool:   r.poolRoot,
		})
	}
	return out
}

// ChunkPoolStats describes one project's shared chunk pool in /v1/stats:
// which runs are grouped under it and, when a query has opened it in this
// process, its pool-wide storage accounting.
type ChunkPoolStats struct {
	Root string   `json:"root"`
	Runs []string `json:"runs"` // registered run IDs attached to the pool
	// Open reports whether the pool is resident (some run opened it);
	// storage figures below are only populated then.
	Open           bool  `json:"open"`
	Leases         int   `json:"leases,omitempty"`
	Chunks         int64 `json:"chunks,omitempty"`
	StoredRawBytes int64 `json:"stored_raw_bytes,omitempty"`
	StoredEncBytes int64 `json:"stored_enc_bytes,omitempty"`
	// CompressionRatio is raw chunk bytes per encoded pack byte — the
	// pool's frame-style encoding win, deliberately not named dedup_ratio:
	// cross-run dedup shows up as StoredRawBytes staying near one family
	// member's footprint, and the per-run dedup figures live elsewhere.
	CompressionRatio float64 `json:"compression_ratio,omitempty"`
}

// Stats is the daemon-wide accounting snapshot served at /v1/stats.
type Stats struct {
	Pool       sched.PoolStats     `json:"pool"`
	StoreCache CacheStats          `json:"store_cache"`
	Runs       map[string]RunStats `json:"runs"`
	// PayloadCaches snapshots every live decoded-payload cache: shared pool
	// caches keyed by pool root, private per-run caches keyed by run ID.
	PayloadCaches map[string]backmat.PayloadCacheStats `json:"payload_caches,omitempty"`
	// ChunkPools groups registered runs by shared chunk pool, keyed by the
	// resolved pool root; absent when no registered run is pooled.
	ChunkPools map[string]ChunkPoolStats `json:"chunk_pools,omitempty"`
	// Draining reports a shutdown in progress (new queries get 503).
	Draining bool `json:"draining,omitempty"`
	// TraceStore reports the durable trace store when one was configured.
	TraceStore *TraceStoreInfo `json:"trace_store,omitempty"`
	// CacheTier reports the remote chunk-cache tier when a remote pool is
	// configured with caching enabled.
	CacheTier *cachetier.Stats `json:"cache_tier,omitempty"`
	// Prefetch reports process-wide speculative-prefetch accounting (issued
	// vs used vs wasted vs cancelled bytes) when a remote pool is configured.
	Prefetch *store.PrefetchSnapshot `json:"prefetch,omitempty"`
}

// TraceStoreInfo describes the durable trace store in /v1/stats.
type TraceStoreInfo struct {
	Dir string `json:"dir"`
	// Bytes is the store's current on-disk segment footprint.
	Bytes int64 `json:"bytes"`
	// Error reports a failed open: the daemon is serving with ring-only
	// tracing and the operator should fix the configured directory.
	Error string `json:"error,omitempty"`
}

// Stats returns a snapshot of pool, store-cache, per-run, and per-chunk-pool
// accounting.
func (s *Server) Stats() Stats {
	out := Stats{
		Pool:          s.pool.Stats(),
		StoreCache:    s.stores.stats(),
		PayloadCaches: s.stores.payloadCacheStats(),
		Runs:          map[string]RunStats{},
	}
	if s.chunkCache != nil {
		ct := s.chunkCache.Stats()
		out.CacheTier = &ct
	}
	if s.remote != nil {
		ps := store.PrefetchTotals()
		out.Prefetch = &ps
	}
	s.mu.Lock()
	runs := make([]*run, 0, len(s.runs))
	for _, r := range s.runs {
		runs = append(runs, r)
	}
	out.Draining = s.draining
	s.mu.Unlock()
	for _, r := range runs {
		// One lock acquisition snapshots the whole RunStats plus the queued
		// and in-flight gauges together, so counters can't tear mid-request
		// (the old code read len(r.sem) outside any lock, which could
		// disagree with the counters copied moments earlier).
		r.mu.Lock()
		st := r.stats
		st.Queued = r.queued
		st.Inflight = r.inflight
		var oldest time.Time
		for _, begun := range r.inflightAt {
			if oldest.IsZero() || begun.Before(oldest) {
				oldest = begun
			}
		}
		r.mu.Unlock()
		if !oldest.IsZero() {
			st.OldestQueryAgeSeconds = time.Since(oldest).Seconds()
		}
		out.Runs[r.cfg.ID] = st
	}
	// Project groups: every pooled run under its pool root, with live pool
	// accounting when the pool is open in-process.
	for _, r := range runs {
		if r.poolRoot == "" {
			continue
		}
		if out.ChunkPools == nil {
			out.ChunkPools = map[string]ChunkPoolStats{}
		}
		ps := out.ChunkPools[r.poolRoot]
		ps.Root = r.poolRoot
		ps.Runs = append(ps.Runs, r.cfg.ID)
		out.ChunkPools[r.poolRoot] = ps
	}
	for root, ps := range out.ChunkPools {
		sort.Strings(ps.Runs)
		if live, ok := store.PoolStatsAt(root); ok {
			ps.Open = true
			ps.Leases = live.Leases
			ps.Chunks = live.Chunks
			ps.StoredRawBytes = live.StoredRawBytes
			ps.StoredEncBytes = live.StoredEncBytes
			if live.StoredEncBytes > 0 {
				ps.CompressionRatio = float64(live.StoredRawBytes) / float64(live.StoredEncBytes)
			}
		}
		out.ChunkPools[root] = ps
	}
	if s.traces != nil {
		out.TraceStore = &TraceStoreInfo{Dir: s.opts.TraceDir, Bytes: s.traces.Bytes()}
	} else if s.traceErr != nil {
		out.TraceStore = &TraceStoreInfo{Dir: s.opts.TraceDir, Error: s.traceErr.Error()}
	}
	return out
}

// Trace returns a retained query trace by run and trace ID (the trace_id a
// replay or sample response reported). The in-memory ring answers first;
// when a durable trace store is configured, traces that aged out of the ring
// — or predate a daemon restart — are rehydrated from it.
func (s *Server) Trace(runID, traceID string) (*obs.Trace, error) {
	r, err := s.run(runID)
	if err != nil {
		return nil, err
	}
	if tr, ok := r.trace(traceID); ok {
		return tr, nil
	}
	if s.traces != nil {
		if e, ok := s.traces.Get(runID, traceID); ok {
			return obs.NewTraceFromSpans(e.Spans), nil
		}
	}
	return nil, fmt.Errorf("%w: %q for run %q", ErrUnknownTrace, traceID, runID)
}

// MetricsRegistry returns the registry the server resolved its handles from
// at construction (nil when metrics were disabled then); the HTTP layer
// renders it at GET /metrics.
func (s *Server) MetricsRegistry() *obs.Registry { return s.reg }

func parseScheduler(name string) (replay.Scheduler, error) {
	switch name {
	case "", "balanced":
		return replay.SchedBalanced, nil
	case "static":
		return replay.SchedStatic, nil
	case "stealing":
		return replay.SchedStealing, nil
	default:
		return 0, fmt.Errorf("%w: unknown scheduler %q (want static, balanced or stealing)", ErrBadRequest, name)
	}
}

func parseInit(name string) (replay.InitMode, error) {
	switch name {
	case "", "weak":
		return replay.Weak, nil
	case "strong":
		return replay.Strong, nil
	default:
		return 0, fmt.Errorf("%w: unknown init mode %q (want strong or weak)", ErrBadRequest, name)
	}
}
