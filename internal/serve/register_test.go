package serve_test

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flor.dev/flor/internal/core"
	"flor.dev/flor/internal/script"
	"flor.dev/flor/internal/serve"
)

// recordShardedRun records miniFactory into dir with a fanout-16 sharded
// checkpoint store and returns the factory.
func recordShardedRun(t *testing.T, dir string, epochs, steps int, seed uint64) func() *script.Program {
	t.Helper()
	factory := miniFactory(epochs, steps, seed)
	if _, err := core.Record(dir, factory, core.RecordOptions{DisableAdaptive: true, ShardFanout: 16}); err != nil {
		t.Fatal(err)
	}
	return factory
}

// TestHTTPRegistrationAndUnknownFormat400 drives POST /v1/runs end to end:
// a good directory registers against a library program, and a directory
// carrying a future/corrupt FORMAT marker is rejected with 400 — the typed
// store.ErrUnknownFormat surfaced as a client error, with the offending
// marker in the body.
func TestHTTPRegistrationAndUnknownFormat400(t *testing.T) {
	base := t.TempDir()
	factory := miniFactory(6, 2, 3)
	goodDir := filepath.Join(base, "good")
	recordRun(t, goodDir, 6, 2, 3)

	// A directory claiming a layout from the future.
	badDir := filepath.Join(base, "bad")
	os.MkdirAll(badDir, 0o755)
	os.WriteFile(filepath.Join(badDir, "FORMAT"), []byte("7 exotic\n"), 0o644)

	fx := startDaemon(t, serve.Options{
		Slots: 2,
		Library: map[string]map[string]func() *script.Program{
			"mini": {"base": factory, "wnorm": withProbe(factory)},
		},
		RegisterRoot: base,
	})

	resp, body := fx.post(t, "/v1/runs", serve.RegisterRequest{ID: "good", Dir: goodDir, Program: "mini"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register good: %d %s", resp.StatusCode, body)
	}
	var runs []serve.RunInfo
	if err := json.Unmarshal(body, &runs); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range runs {
		if r.ID == "good" {
			found = true
			if r.Format != "v2" || r.Shards != 1 {
				t.Fatalf("registered run layout = %q/%d, want v2/1", r.Format, r.Shards)
			}
		}
	}
	if !found {
		t.Fatalf("registered run missing from listing: %s", body)
	}

	// Relative request paths resolve against the register root, not the
	// daemon's working directory.
	resp, body = fx.post(t, "/v1/runs", serve.RegisterRequest{ID: "good-rel", Dir: "good", Program: "mini"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register relative dir: %d %s", resp.StatusCode, body)
	}

	// The registered run actually serves queries.
	resp, body = fx.post(t, "/v1/runs/good/replay", serve.ReplayRequest{Probe: "wnorm", Workers: 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replay registered run: %d %s", resp.StatusCode, body)
	}

	// Unknown store format → 400 naming the marker, not a 500.
	resp, body = fx.post(t, "/v1/runs", serve.RegisterRequest{ID: "bad", Dir: badDir, Program: "mini"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("register bad dir: %d %s, want 400", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "7 exotic") {
		t.Fatalf("400 body %s does not name the detected marker", body)
	}

	// Nonexistent directory → 400, not 500.
	resp, _ = fx.post(t, "/v1/runs", serve.RegisterRequest{ID: "ghost", Dir: filepath.Join(base, "no-such"), Program: "mini"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("register nonexistent dir: %d, want 400", resp.StatusCode)
	}

	// An empty (never-recorded) directory → 400 now, not a 500 at first query.
	emptyDir := filepath.Join(base, "empty")
	os.MkdirAll(emptyDir, 0o755)
	resp, body = fx.post(t, "/v1/runs", serve.RegisterRequest{ID: "empty", Dir: emptyDir, Program: "mini"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("register empty dir: %d %s, want 400", resp.StatusCode, body)
	}

	// Unknown program name → 400 listing the library.
	resp, body = fx.post(t, "/v1/runs", serve.RegisterRequest{ID: "x", Dir: goodDir, Program: "nope"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("register unknown program: %d %s, want 400", resp.StatusCode, body)
	}

	// Duplicate ID → 400.
	resp, _ = fx.post(t, "/v1/runs", serve.RegisterRequest{ID: "good", Dir: goodDir, Program: "mini"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("duplicate register: %d, want 400", resp.StatusCode)
	}

	// Directories outside the register root are confined away — remote
	// clients must not be able to point the daemon at arbitrary paths.
	outside := t.TempDir()
	recordRun(t, filepath.Join(outside, "r"), 4, 2, 5)
	if err := os.Symlink(outside, filepath.Join(base, "sneaky")); err != nil {
		t.Fatal(err)
	}
	for _, dir := range []string{
		filepath.Join(outside, "r"),
		filepath.Join(base, "..", "somewhere"),
		"/etc",
		filepath.Join(base, "sneaky", "r"), // symlink under the root escaping it
	} {
		resp, body = fx.post(t, "/v1/runs", serve.RegisterRequest{ID: "escape", Dir: dir, Program: "mini"})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("register outside root (%s): %d %s, want 400", dir, resp.StatusCode, body)
		}
	}
}

// TestRegisterWithoutLibrary400 pins that HTTP registration on a server
// with no program library is a client error, not a panic or 500.
func TestRegisterWithoutLibrary400(t *testing.T) {
	fx := startDaemon(t, serve.Options{Slots: 2})
	resp, _ := fx.post(t, "/v1/runs", serve.RegisterRequest{ID: "x", Dir: t.TempDir(), Program: "mini"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("register without library: %d, want 400", resp.StatusCode)
	}
}

// TestShardRootsPinnedAtRegistration pins the TOCTOU defense: the shard
// roots validated at registration are passed back to every store open, so
// rewriting a registered run's SHARDS file afterwards fails the query
// instead of redirecting the daemon's pack reads elsewhere.
func TestShardRootsPinnedAtRegistration(t *testing.T) {
	base := t.TempDir()
	dir := filepath.Join(base, "sharded")
	factory := recordShardedRun(t, dir, 6, 2, 13)
	fx := startDaemon(t, serve.Options{Slots: 2})
	if err := fx.srv.Register(serve.RunConfig{
		ID:        "pinned",
		Dir:       dir,
		Factories: map[string]func() *script.Program{"base": factory},
	}); err != nil {
		t.Fatal(err)
	}
	// The SHARDS rewrite lands between registration and the first open.
	if err := os.WriteFile(filepath.Join(dir, "SHARDS"), []byte("/somewhere/else\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	resp, body := fx.post(t, "/v1/runs/pinned/replay", serve.ReplayRequest{Workers: 1})
	if resp.StatusCode == http.StatusOK {
		t.Fatalf("replay succeeded against a rewritten SHARDS file: %s", body)
	}
	if !strings.Contains(string(body), "relocate") {
		t.Fatalf("error %s does not surface the shard-root mismatch", body)
	}
}

// TestRunsListingReportsShardedLayout registers a sharded recording and
// checks the listing reports its layout.
func TestRunsListingReportsShardedLayout(t *testing.T) {
	fx := startDaemon(t, serve.Options{Slots: 2})
	dir := filepath.Join(t.TempDir(), "sharded")
	factory := recordShardedRun(t, dir, 6, 2, 9)
	if err := fx.srv.Register(serve.RunConfig{
		ID:        "sharded",
		Dir:       dir,
		Factories: map[string]func() *script.Program{"base": factory},
	}); err != nil {
		t.Fatal(err)
	}
	for _, r := range fx.srv.Runs() {
		if r.ID == "sharded" {
			if r.Format != "v2-sharded/16" || r.Shards != 16 {
				t.Fatalf("sharded run layout = %q/%d", r.Format, r.Shards)
			}
			return
		}
	}
	t.Fatal("sharded run missing from listing")
}
