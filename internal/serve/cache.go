package serve

import (
	"container/list"
	"sort"
	"sync"
	"time"

	"flor.dev/flor/internal/backmat"
	"flor.dev/flor/internal/obs"
	"flor.dev/flor/internal/replay"
)

// cacheEntry is one hot store: the recording opened read-only (manifest and
// dedup index replayed once) plus the cross-query decoded-payload cache.
// Entries stay valid after eviction — in-flight queries holding one simply
// finish on it; eviction only stops new queries from finding it hot.
//
// For runs attached to a shared chunk pool, cache is the *pool's* payload
// cache, shared by every sibling run of the project: content is addressed
// by hash, so a backbone decoded for one run's replay serves its whole
// fine-tuning family.
type cacheEntry struct {
	runID    string
	poolRoot string // "" for private-pack runs
	rec      *replay.Recording
	cache    *backmat.PayloadCache

	openedAt  time.Time // when this entry entered the LRU
	lastTouch time.Time // last hit (guarded by storeCache.mu)
}

// storeCache is an LRU of open stores keyed by run ID, plus the per-pool
// payload caches that outlive individual entries.
type storeCache struct {
	mu         sync.Mutex
	cap        int
	cacheBytes int64
	entries    map[string]*list.Element // value: *cacheEntry
	lru        *list.List               // front = most recent
	onEvict    func(runID string)
	// poolCaches keys shared payload caches by resolved pool root. Pool
	// caches are not evicted with their runs: the pool outlives any one
	// run's LRU residency, and its decoded content stays valid (content-
	// addressed, immutable by contract).
	poolCaches map[string]*backmat.PayloadCache

	hits      int64
	misses    int64
	evictions int64

	mEvictions *obs.Counter
	mOpen      *obs.Gauge
}

func newStoreCache(capacity int, cacheBytes int64, onEvict func(string)) *storeCache {
	return &storeCache{
		cap:        capacity,
		cacheBytes: cacheBytes,
		entries:    map[string]*list.Element{},
		lru:        list.New(),
		onEvict:    onEvict,
		poolCaches: map[string]*backmat.PayloadCache{},
		mEvictions: obs.C(obs.MServeStoreEvictions),
		mOpen:      obs.G(obs.MServeStoreOpen),
	}
}

// get returns the entry for runID, opening the store via load on a miss
// (the caller chooses the open path: pinned local roots, or the remote
// object backend) and evicting the least recently used entry beyond
// capacity. poolRoot selects the shared payload cache ("" = private).
func (c *storeCache) get(runID, poolRoot string, load func() (*replay.Recording, error)) (*cacheEntry, bool, error) {
	c.mu.Lock()
	if el, ok := c.entries[runID]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		ent := el.Value.(*cacheEntry)
		ent.lastTouch = time.Now()
		c.mu.Unlock()
		return ent, true, nil
	}
	c.misses++
	c.mu.Unlock()

	// Load outside the lock: opening a cold store replays its manifest,
	// which must not block hits on other runs. A racing duplicate load of
	// the same run is benign (last one wins the cache slot).
	rec, err := load()
	if err != nil {
		return nil, false, err
	}
	now := time.Now()
	ent := &cacheEntry{
		runID: runID, poolRoot: poolRoot, rec: rec,
		cache: c.payloadCache(poolRoot), openedAt: now, lastTouch: now,
	}

	c.mu.Lock()
	var evicted []string
	if el, ok := c.entries[runID]; ok {
		// Lost the race: adopt the winner so concurrent queries share it.
		c.lru.MoveToFront(el)
		ent = el.Value.(*cacheEntry)
	} else {
		c.entries[runID] = c.lru.PushFront(ent)
		for c.lru.Len() > c.cap {
			last := c.lru.Back()
			old := last.Value.(*cacheEntry)
			c.lru.Remove(last)
			delete(c.entries, old.runID)
			c.evictions++
			c.mEvictions.Inc()
			evicted = append(evicted, old.runID)
		}
	}
	c.mOpen.Set(int64(c.lru.Len()))
	hook := c.onEvict
	c.mu.Unlock()
	if hook != nil {
		for _, id := range evicted {
			hook(id)
		}
	}
	return ent, false, nil
}

// payloadCache returns the decoded-payload cache for a store: per-run for
// private-pack stores, shared pool-wide for pooled ones.
func (c *storeCache) payloadCache(poolRoot string) *backmat.PayloadCache {
	if poolRoot == "" {
		return backmat.NewPayloadCache(c.cacheBytes)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if pc, ok := c.poolCaches[poolRoot]; ok {
		return pc
	}
	pc := backmat.NewPayloadCache(c.cacheBytes)
	c.poolCaches[poolRoot] = pc
	return pc
}

// drop removes runID's entry immediately, firing the eviction hook like LRU
// eviction does. The stale-store refresh path uses it: a cached read-only
// store that resolved chunk locations before a GC retired — and, past the
// grace period, deleted — their pack generation can only recover by
// reopening, so the server drops the entry and lets the next open resolve
// the surviving generation. In-flight queries holding the old entry finish
// on it like they do after an ordinary eviction.
func (c *storeCache) drop(runID string) {
	c.mu.Lock()
	el, ok := c.entries[runID]
	if ok {
		c.lru.Remove(el)
		delete(c.entries, runID)
		c.evictions++
		c.mEvictions.Inc()
		c.mOpen.Set(int64(c.lru.Len()))
	}
	hook := c.onEvict
	c.mu.Unlock()
	if ok && hook != nil {
		hook(runID)
	}
}

// clear drops every entry (graceful shutdown: stop handing out stores),
// firing the eviction hook for each like normal LRU eviction does —
// embedders track open-store resources through it.
func (c *storeCache) clear() {
	c.mu.Lock()
	var evicted []string
	for id := range c.entries {
		evicted = append(evicted, id)
	}
	c.entries = map[string]*list.Element{}
	c.lru = list.New()
	c.poolCaches = map[string]*backmat.PayloadCache{}
	c.evictions += int64(len(evicted))
	c.mEvictions.Add(int64(len(evicted)))
	c.mOpen.Set(0)
	hook := c.onEvict
	c.mu.Unlock()
	if hook != nil {
		sort.Strings(evicted)
		for _, id := range evicted {
			hook(id)
		}
	}
}

// contains reports whether runID is currently cached (no LRU touch).
func (c *storeCache) contains(runID string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[runID]
	return ok
}

// StoreResidency describes one resident store's LRU tenure.
type StoreResidency struct {
	RunID string `json:"run_id"`
	// AgeSeconds is how long the store has been resident since it was
	// opened into the LRU.
	AgeSeconds float64 `json:"age_seconds"`
	// IdleSeconds is how long since the last query touched it.
	IdleSeconds float64 `json:"idle_seconds"`
}

// CacheStats is the open-store LRU accounting.
type CacheStats struct {
	Capacity  int   `json:"capacity"`
	Open      int   `json:"open"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	// Residency lists resident stores most-recently-used first, with their
	// time in cache and idle time.
	Residency []StoreResidency `json:"residency,omitempty"`
}

func (c *storeCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	st := CacheStats{
		Capacity:  c.cap,
		Open:      c.lru.Len(),
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
	for el := c.lru.Front(); el != nil; el = el.Next() {
		ent := el.Value.(*cacheEntry)
		st.Residency = append(st.Residency, StoreResidency{
			RunID:       ent.runID,
			AgeSeconds:  now.Sub(ent.openedAt).Seconds(),
			IdleSeconds: now.Sub(ent.lastTouch).Seconds(),
		})
	}
	return st
}

// payloadCacheStats snapshots every live decoded-payload cache: shared pool
// caches keyed by their pool root, private per-run caches keyed by run ID.
// Each snapshot is internally consistent (taken under the cache's own lock).
func (c *storeCache) payloadCacheStats() map[string]backmat.PayloadCacheStats {
	c.mu.Lock()
	pools := make(map[string]*backmat.PayloadCache, len(c.poolCaches))
	for root, pc := range c.poolCaches {
		pools[root] = pc
	}
	for el := c.lru.Front(); el != nil; el = el.Next() {
		ent := el.Value.(*cacheEntry)
		if ent.poolRoot == "" {
			pools[ent.runID] = ent.cache
		}
	}
	c.mu.Unlock()
	if len(pools) == 0 {
		return nil
	}
	out := make(map[string]backmat.PayloadCacheStats, len(pools))
	for key, pc := range pools {
		out[key] = pc.Stats()
	}
	return out
}
