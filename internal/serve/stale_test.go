package serve_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"flor.dev/flor/internal/script"
	"flor.dev/flor/internal/serve"
	"flor.dev/flor/internal/store"
)

// supersedeAndExpire makes one of the run's checkpoints dead — overwriting
// victim with the (valid, different) sections of donor — and runs the two GC
// passes that first retire and then delete the replaced pack generation.
// Any store that resolved chunk locations before the swap now references a
// pack object that no longer exists on disk.
func supersedeAndExpire(t *testing.T, st *store.Store, victim, donor store.Key) {
	t.Helper()
	secs, ok, err := st.GetSections(donor, nil)
	if err != nil || !ok {
		t.Fatalf("read donor %v: ok=%v err=%v", donor, ok, err)
	}
	if _, err := st.PutSections(victim, secs, 0, 0, 0); err != nil {
		t.Fatalf("supersede %v: %v", victim, err)
	}
	res, err := st.GCWith(store.GCOptions{PackRetention: time.Nanosecond})
	if err != nil || res.DeadChunks == 0 || res.CompactedShards == 0 {
		t.Fatalf("compacting GC pass: %+v err=%v", res, err)
	}
	time.Sleep(2 * time.Millisecond)
	res, err = st.GCWith(store.GCOptions{})
	if err != nil || res.DeletedPacks == 0 {
		t.Fatalf("deleting GC pass: %+v err=%v", res, err)
	}
}

// TestServeRefreshesStaleStoreAfterPackGC pins the daemon's recovery when
// pack GC outlives a cached read-only store's grace period: a recorded run
// is served (caching the open store), then a checkpoint is superseded and
// two nanosecond-retention GC passes delete the pack generation the cached
// store's chunk index points at. The next replay and sample queries hit
// store.ErrStalePack, and the server must drop the cached entry, reopen the
// store against the surviving generation, and retry once — the client sees
// a successful response, not an error.
func TestServeRefreshesStaleStoreAfterPackGC(t *testing.T) {
	// The streamed pack-read path surfaces the deleted generation as an open
	// error immediately. (The mmap path can outlive deletion: an established
	// mapping keeps old-generation bytes readable, which is the grace period
	// working as intended — it only goes stale on remap.)
	prev := store.SetMmapPackReads(false)
	defer store.SetMmapPackReads(prev)

	dir := t.TempDir()
	factory := recordRun(t, dir, 6, 2, 7)

	var mu sync.Mutex
	var evicted []string
	srv := serve.New(serve.Options{
		Slots: 4,
		// A 1-byte payload cache admits nothing, so every query resolves its
		// restores through the store — the stale pack cannot hide behind a
		// decoded-payload hit.
		PayloadCacheBytes: 1,
		OnEvict: func(id string) {
			mu.Lock()
			evicted = append(evicted, id)
			mu.Unlock()
		},
	})
	const runID = "run-gc"
	if err := srv.Register(serve.RunConfig{
		ID:  runID,
		Dir: dir,
		Factories: map[string]func() *script.Program{
			"base":  factory,
			"wnorm": withProbe(factory),
		},
	}); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	if _, err := srv.Replay(ctx, runID, serve.ReplayRequest{Probe: "wnorm"}); err != nil {
		t.Fatalf("warm-up replay: %v", err)
	}

	// "Another process" writes to the run directory: supersede epoch 0's
	// train-loop checkpoint and expire the replaced generation. Compaction
	// moves every live chunk to a new pack generation, so the cached store's
	// whole index — not just the superseded key — goes stale.
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var execs []int
	for _, m := range st.Metas() {
		if m.Key.LoopID == "train" {
			execs = append(execs, m.Key.Exec)
		}
	}
	if len(execs) < 3 {
		t.Fatalf("want >= 3 train-loop checkpoints, got %v", execs)
	}
	last := store.Key{LoopID: "train", Exec: execs[len(execs)-1]}
	supersedeAndExpire(t, st, store.Key{LoopID: "train", Exec: execs[0]}, last)

	// The cached store now resolves chunks in a deleted pack generation; the
	// query must transparently refresh the store and succeed. (The replayed
	// logs may carry anomalies — epoch 0's state was overwritten — but that
	// is a reported divergence, not a serving failure.)
	if _, err := srv.Replay(ctx, runID, serve.ReplayRequest{Probe: "wnorm"}); err != nil {
		t.Fatalf("replay against stale store: %v", err)
	}
	rs := srv.Stats().Runs[runID]
	if rs.StaleRefreshes != 1 {
		t.Fatalf("stale refreshes = %d, want 1 (stats: %+v)", rs.StaleRefreshes, rs)
	}
	if rs.Errors != 0 {
		t.Fatalf("errors = %d after recovered refresh, want 0", rs.Errors)
	}

	// Second cycle: stale out the refreshed store too, and recover through
	// the sample path this time.
	supersedeAndExpire(t, st, store.Key{LoopID: "train", Exec: execs[1]}, last)
	if _, err := srv.Sample(ctx, runID, serve.SampleRequest{Probe: "wnorm", Iterations: []int{4}}); err != nil {
		t.Fatalf("sample against stale store: %v", err)
	}
	rs = srv.Stats().Runs[runID]
	if rs.StaleRefreshes != 2 {
		t.Fatalf("stale refreshes = %d, want 2 (stats: %+v)", rs.StaleRefreshes, rs)
	}

	mu.Lock()
	defer mu.Unlock()
	drops := 0
	for _, id := range evicted {
		if id == runID {
			drops++
		}
	}
	if drops != 2 {
		t.Fatalf("eviction hook fired %d times for %s, want 2 (evicted: %v)", drops, runID, evicted)
	}
}
