// Package value defines the typed values that live in a training program's
// environment, and the snapshot/restore/encode protocol Flor checkpoints are
// built from.
//
// The protocol has two halves, mirroring the paper's record/replay split:
//
//   - Value.Snapshot() performs a fast deep copy of the value's mutable state
//     on the training thread (the analogue of fork()'s copy in §5.1); the
//     resulting Payload is immutable and can be encoded in the background.
//   - Value.Restore(payload) applies a payload onto the live object. Replay
//     re-executes program setup to reconstruct objects (models, optimizers),
//     then restores checkpointed state onto them — physiological recovery:
//     logical reconstruction of structure, physical recovery of state.
package value

import (
	"fmt"

	"flor.dev/flor/internal/codec"
	"flor.dev/flor/internal/nn"
	"flor.dev/flor/internal/opt"
	"flor.dev/flor/internal/tensor"
	"flor.dev/flor/internal/xrand"
)

// Kind identifies a value/payload type on the wire.
type Kind uint8

// The supported kinds.
const (
	KindInvalid Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
	KindTensor
	KindState // named tensors + named scalars: models, optimizers, schedulers
	KindRNG
	KindOpaque // non-checkpointable runtime handles (dataset objects etc.)
)

// String returns a human-readable kind name.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	case KindTensor:
		return "tensor"
	case KindState:
		return "state"
	case KindRNG:
		return "rng"
	case KindOpaque:
		return "opaque"
	default:
		return fmt.Sprintf("invalid(%d)", uint8(k))
	}
}

// Payload is an immutable snapshot of a value's mutable state.
type Payload interface {
	Kind() Kind
	Encode(w *codec.Writer)
	SizeBytes() int
}

// Value is a live object in a program environment.
type Value interface {
	Kind() Kind
	// Snapshot deep-copies the value's mutable state. It is the only part of
	// materialization that runs on the training thread.
	Snapshot() Payload
	// Restore applies a payload captured from an identically structured
	// value.
	Restore(Payload) error
	// SizeBytes estimates the serialized size, used by adaptive
	// checkpointing to predict materialization cost.
	SizeBytes() int
	// Equal reports whether another value holds identical state; used by
	// memoization-correctness checks and tests.
	Equal(Value) bool
}

// ---------- payloads ----------

// IntPayload carries an int.
type IntPayload int64

// Kind implements Payload.
func (IntPayload) Kind() Kind { return KindInt }

// Encode implements Payload.
func (p IntPayload) Encode(w *codec.Writer) { w.Int(int(p)) }

// SizeBytes implements Payload.
func (IntPayload) SizeBytes() int { return 9 }

// FloatPayload carries a float64.
type FloatPayload float64

// Kind implements Payload.
func (FloatPayload) Kind() Kind { return KindFloat }

// Encode implements Payload.
func (p FloatPayload) Encode(w *codec.Writer) { w.Float64(float64(p)) }

// SizeBytes implements Payload.
func (FloatPayload) SizeBytes() int { return 8 }

// StringPayload carries a string.
type StringPayload string

// Kind implements Payload.
func (StringPayload) Kind() Kind { return KindString }

// Encode implements Payload.
func (p StringPayload) Encode(w *codec.Writer) { w.String(string(p)) }

// SizeBytes implements Payload.
func (p StringPayload) SizeBytes() int { return len(p) + 4 }

// BoolPayload carries a bool.
type BoolPayload bool

// Kind implements Payload.
func (BoolPayload) Kind() Kind { return KindBool }

// Encode implements Payload.
func (p BoolPayload) Encode(w *codec.Writer) { w.Bool(bool(p)) }

// SizeBytes implements Payload.
func (BoolPayload) SizeBytes() int { return 1 }

// TensorPayload carries a dense tensor, in one of two forms. Snapshot builds
// the materialized form (T set). DecodePayload builds the lazy form: the wire
// float block and shape, unmaterialized. A lazy payload restores by copying
// checkpoint bytes straight into the live tensor's backing array — the
// restore hot path never builds an intermediate tensor copy — and
// materializes on demand for any other consumer via Tensor. The raw block
// aliases the decoded section buffer, which is immutable once returned, so
// lazy payloads are safe to hold indefinitely (e.g. in a PayloadCache).
type TensorPayload struct {
	T *tensor.Tensor

	// Lazy form, set only when T is nil: raw holds 8 little-endian IEEE-754
	// bytes per element, shape the dimensions.
	raw   []byte
	shape []int
}

// Kind implements Payload.
func (TensorPayload) Kind() Kind { return KindTensor }

// Encode implements Payload.
func (p TensorPayload) Encode(w *codec.Writer) {
	if p.T != nil {
		w.Tensor(p.T)
		return
	}
	// Re-emit the lazy form verbatim: shape prefix then the wire float block,
	// byte-identical to encoding the materialized tensor.
	w.Uvarint(uint64(len(p.shape)))
	for _, d := range p.shape {
		w.Uvarint(uint64(d))
	}
	w.RawAppend(p.raw)
}

// SizeBytes implements Payload.
func (p TensorPayload) SizeBytes() int {
	if p.T != nil {
		return 8*p.T.Len() + 8
	}
	return len(p.raw) + 8
}

// Tensor returns the payload's tensor, materializing a lazy view on demand.
func (p TensorPayload) Tensor() *tensor.Tensor {
	if p.T != nil {
		return p.T
	}
	t := tensor.New(p.shape...)
	codec.PutFloats(t.Data(), p.raw)
	return t
}

// Shape returns the payload's dimensions without materializing it.
func (p TensorPayload) Shape() []int {
	if p.T != nil {
		return p.T.Shape()
	}
	return p.shape
}

// StatePayload carries named tensors plus named scalars, sorted by name on
// the wire for deterministic encoding. It serves models, optimizers and
// schedulers alike.
type StatePayload struct{ S *opt.State }

// Kind implements Payload.
func (StatePayload) Kind() Kind { return KindState }

// Encode implements Payload.
func (p StatePayload) Encode(w *codec.Writer) {
	scalarKeys := sortedKeys(p.S.Scalars)
	w.Uvarint(uint64(len(scalarKeys)))
	for _, k := range scalarKeys {
		w.String(k)
		w.Float64(p.S.Scalars[k])
	}
	tensorKeys := sortedKeysT(p.S.Tensors)
	w.Uvarint(uint64(len(tensorKeys)))
	for _, k := range tensorKeys {
		w.String(k)
		w.Tensor(p.S.Tensors[k])
	}
}

// SizeBytes implements Payload.
func (p StatePayload) SizeBytes() int { return p.S.SizeBytes() + 8 }

// RNGPayload carries a PCG generator state.
type RNGPayload [16]byte

// Kind implements Payload.
func (RNGPayload) Kind() Kind { return KindRNG }

// Encode implements Payload.
func (p RNGPayload) Encode(w *codec.Writer) { w.RawBytes(p[:]) }

// SizeBytes implements Payload.
func (RNGPayload) SizeBytes() int { return 17 }

// DecodePayload reads one payload of the given kind from r.
func DecodePayload(r *codec.Reader, k Kind) (Payload, error) {
	switch k {
	case KindInt:
		v, err := r.Int()
		if err != nil {
			return nil, err
		}
		return IntPayload(v), nil
	case KindFloat:
		v, err := r.Float64()
		if err != nil {
			return nil, err
		}
		return FloatPayload(v), nil
	case KindString:
		v, err := r.String()
		if err != nil {
			return nil, err
		}
		return StringPayload(v), nil
	case KindBool:
		v, err := r.Bool()
		if err != nil {
			return nil, err
		}
		return BoolPayload(v), nil
	case KindTensor:
		// Decode lazily: keep the wire view so a subsequent Restore copies
		// bytes straight onto the live tensor instead of paying for an
		// intermediate materialized copy it would immediately discard.
		shape, raw, err := r.TensorView()
		if err != nil {
			return nil, err
		}
		return TensorPayload{raw: raw, shape: shape}, nil
	case KindState:
		st := opt.NewState()
		ns, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		for i := uint64(0); i < ns; i++ {
			name, err := r.String()
			if err != nil {
				return nil, err
			}
			v, err := r.Float64()
			if err != nil {
				return nil, err
			}
			st.Scalars[name] = v
		}
		nt, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		for i := uint64(0); i < nt; i++ {
			name, err := r.String()
			if err != nil {
				return nil, err
			}
			t, err := r.Tensor()
			if err != nil {
				return nil, err
			}
			st.Tensors[name] = t
		}
		return StatePayload{S: st}, nil
	case KindRNG:
		b, err := r.RawBytes()
		if err != nil {
			return nil, err
		}
		if len(b) != 16 {
			return nil, fmt.Errorf("value: RNG payload length %d, want 16", len(b))
		}
		var p RNGPayload
		copy(p[:], b)
		return p, nil
	case KindOpaque:
		return OpaquePayload{}, nil
	default:
		return nil, fmt.Errorf("value: unknown payload kind %d", uint8(k))
	}
}

// EncodePayload writes k's tag followed by the payload body.
func EncodePayload(w *codec.Writer, p Payload) {
	w.Uvarint(uint64(p.Kind()))
	p.Encode(w)
}

// DecodeTaggedPayload reads a kind tag then the payload body.
func DecodeTaggedPayload(r *codec.Reader) (Payload, error) {
	k, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	return DecodePayload(r, Kind(k))
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortStrings(keys)
	return keys
}

func sortedKeysT(m map[string]*tensor.Tensor) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortStrings(keys)
	return keys
}

func sortStrings(s []string) {
	// Insertion sort: key sets are small and this avoids importing sort in a
	// hot path package.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// ---------- live values ----------

// Int is a mutable integer box.
type Int struct{ V int }

// Kind implements Value.
func (*Int) Kind() Kind { return KindInt }

// Snapshot implements Value.
func (b *Int) Snapshot() Payload { return IntPayload(b.V) }

// Restore implements Value.
func (b *Int) Restore(p Payload) error {
	ip, ok := p.(IntPayload)
	if !ok {
		return restoreMismatch(b, p)
	}
	b.V = int(ip)
	return nil
}

// SizeBytes implements Value.
func (*Int) SizeBytes() int { return 9 }

// Equal implements Value.
func (b *Int) Equal(o Value) bool {
	ob, ok := o.(*Int)
	return ok && ob.V == b.V
}

// Float is a mutable float box.
type Float struct{ V float64 }

// Kind implements Value.
func (*Float) Kind() Kind { return KindFloat }

// Snapshot implements Value.
func (b *Float) Snapshot() Payload { return FloatPayload(b.V) }

// Restore implements Value.
func (b *Float) Restore(p Payload) error {
	fp, ok := p.(FloatPayload)
	if !ok {
		return restoreMismatch(b, p)
	}
	b.V = float64(fp)
	return nil
}

// SizeBytes implements Value.
func (*Float) SizeBytes() int { return 8 }

// Equal implements Value.
func (b *Float) Equal(o Value) bool {
	ob, ok := o.(*Float)
	return ok && ob.V == b.V
}

// String is a mutable string box.
type String struct{ V string }

// Kind implements Value.
func (*String) Kind() Kind { return KindString }

// Snapshot implements Value.
func (b *String) Snapshot() Payload { return StringPayload(b.V) }

// Restore implements Value.
func (b *String) Restore(p Payload) error {
	sp, ok := p.(StringPayload)
	if !ok {
		return restoreMismatch(b, p)
	}
	b.V = string(sp)
	return nil
}

// SizeBytes implements Value.
func (b *String) SizeBytes() int { return len(b.V) + 4 }

// Equal implements Value.
func (b *String) Equal(o Value) bool {
	ob, ok := o.(*String)
	return ok && ob.V == b.V
}

// Bool is a mutable bool box.
type Bool struct{ V bool }

// Kind implements Value.
func (*Bool) Kind() Kind { return KindBool }

// Snapshot implements Value.
func (b *Bool) Snapshot() Payload { return BoolPayload(b.V) }

// Restore implements Value.
func (b *Bool) Restore(p Payload) error {
	bp, ok := p.(BoolPayload)
	if !ok {
		return restoreMismatch(b, p)
	}
	b.V = bool(bp)
	return nil
}

// SizeBytes implements Value.
func (*Bool) SizeBytes() int { return 1 }

// Equal implements Value.
func (b *Bool) Equal(o Value) bool {
	ob, ok := o.(*Bool)
	return ok && ob.V == b.V
}

// Tensor wraps a live tensor; restore copies data in place so views held
// elsewhere stay valid.
type Tensor struct{ T *tensor.Tensor }

// Kind implements Value.
func (*Tensor) Kind() Kind { return KindTensor }

// Snapshot implements Value.
func (b *Tensor) Snapshot() Payload { return TensorPayload{T: b.T.Clone()} }

// Restore implements Value.
func (b *Tensor) Restore(p Payload) error {
	tp, ok := p.(TensorPayload)
	if !ok {
		return restoreMismatch(b, p)
	}
	if tp.T == nil {
		// Lazy payload: copy the wire bytes straight into the live tensor's
		// aligned backing array, skipping the intermediate tensor entirely.
		if !shapeEqual(b.T.Shape(), tp.shape) {
			return fmt.Errorf("value: tensor restore shape mismatch %v vs %v", b.T.Shape(), tp.shape)
		}
		codec.PutFloats(b.T.Data(), tp.raw)
		return nil
	}
	if !tensor.SameShape(b.T, tp.T) {
		return fmt.Errorf("value: tensor restore shape mismatch %v vs %v", b.T.Shape(), tp.T.Shape())
	}
	b.T.CopyFrom(tp.T)
	return nil
}

func shapeEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SizeBytes implements Value.
func (b *Tensor) SizeBytes() int { return 8*b.T.Len() + 8 }

// Equal implements Value.
func (b *Tensor) Equal(o Value) bool {
	ob, ok := o.(*Tensor)
	return ok && tensor.Equal(b.T, ob.T)
}

// Model wraps a live nn.Module. Snapshotting captures every parameter;
// restoring copies parameter data into the live module, which replay has
// already reconstructed by re-executing program setup.
type Model struct{ M nn.Module }

// Kind implements Value.
func (*Model) Kind() Kind { return KindState }

// Snapshot implements Value.
func (b *Model) Snapshot() Payload {
	st := opt.NewState()
	for _, p := range b.M.Params() {
		st.Tensors[p.Name] = p.Var.Value.Clone()
	}
	return StatePayload{S: st}
}

// Restore implements Value.
func (b *Model) Restore(p Payload) error {
	sp, ok := p.(StatePayload)
	if !ok {
		return restoreMismatch(b, p)
	}
	return nn.LoadState(b.M, sp.S.Tensors)
}

// SizeBytes implements Value.
func (b *Model) SizeBytes() int {
	n := 0
	for _, p := range b.M.Params() {
		n += 8*p.Var.Value.Len() + len(p.Name) + 8
	}
	return n
}

// Equal implements Value.
func (b *Model) Equal(o Value) bool {
	ob, ok := o.(*Model)
	return ok && nn.StatesEqual(b.M, ob.M)
}

// Optimizer wraps a live optimizer; the wrapped object also drives Flor's
// changeset augmentation (it exposes the model it mutates).
type Optimizer struct{ O opt.Optimizer }

// Kind implements Value.
func (*Optimizer) Kind() Kind { return KindState }

// Snapshot implements Value.
func (b *Optimizer) Snapshot() Payload { return StatePayload{S: b.O.Snapshot()} }

// Restore implements Value.
func (b *Optimizer) Restore(p Payload) error {
	sp, ok := p.(StatePayload)
	if !ok {
		return restoreMismatch(b, p)
	}
	return b.O.Restore(sp.S)
}

// SizeBytes implements Value.
func (b *Optimizer) SizeBytes() int { return b.O.Snapshot().SizeBytes() }

// Equal implements Value.
func (b *Optimizer) Equal(o Value) bool {
	ob, ok := o.(*Optimizer)
	return ok && b.O.Snapshot().Equal(ob.O.Snapshot())
}

// Scheduler wraps a live LR scheduler.
type Scheduler struct{ S opt.Scheduler }

// Kind implements Value.
func (*Scheduler) Kind() Kind { return KindState }

// Snapshot implements Value.
func (b *Scheduler) Snapshot() Payload { return StatePayload{S: b.S.Snapshot()} }

// Restore implements Value.
func (b *Scheduler) Restore(p Payload) error {
	sp, ok := p.(StatePayload)
	if !ok {
		return restoreMismatch(b, p)
	}
	return b.S.Restore(sp.S)
}

// SizeBytes implements Value.
func (b *Scheduler) SizeBytes() int { return b.S.Snapshot().SizeBytes() }

// Equal implements Value.
func (b *Scheduler) Equal(o Value) bool {
	ob, ok := o.(*Scheduler)
	return ok && b.S.Snapshot().Equal(ob.S.Snapshot())
}

// RNG wraps a live random generator whose consumption inside a loop is a
// side-effect that checkpoints must capture.
type RNG struct{ R *xrand.RNG }

// Kind implements Value.
func (*RNG) Kind() Kind { return KindRNG }

// Snapshot implements Value.
func (b *RNG) Snapshot() Payload { return RNGPayload(b.R.State()) }

// Restore implements Value.
func (b *RNG) Restore(p Payload) error {
	rp, ok := p.(RNGPayload)
	if !ok {
		return restoreMismatch(b, p)
	}
	b.R.SetState([16]byte(rp))
	return nil
}

// SizeBytes implements Value.
func (*RNG) SizeBytes() int { return 17 }

// Equal implements Value.
func (b *RNG) Equal(o Value) bool {
	ob, ok := o.(*RNG)
	return ok && b.R.Equal(ob.R)
}

// OpaquePayload is the (empty) snapshot of an Opaque value.
type OpaquePayload struct{}

// Kind implements Payload.
func (OpaquePayload) Kind() Kind { return KindOpaque }

// Encode implements Payload.
func (OpaquePayload) Encode(*codec.Writer) {}

// SizeBytes implements Payload.
func (OpaquePayload) SizeBytes() int { return 0 }

// Opaque wraps a runtime object that does not need checkpointing: dataset
// handles, trainer closures, and other objects that programs reconstruct
// deterministically in setup. An Opaque value must never appear in a loop
// changeset with meaningful state; its snapshot captures nothing.
type Opaque struct{ V any }

// Kind implements Value.
func (*Opaque) Kind() Kind { return KindOpaque }

// Snapshot implements Value.
func (*Opaque) Snapshot() Payload { return OpaquePayload{} }

// Restore implements Value.
func (b *Opaque) Restore(p Payload) error {
	if _, ok := p.(OpaquePayload); !ok {
		return restoreMismatch(b, p)
	}
	return nil
}

// SizeBytes implements Value.
func (*Opaque) SizeBytes() int { return 0 }

// Equal implements Value.
func (b *Opaque) Equal(o Value) bool {
	ob, ok := o.(*Opaque)
	return ok && ob.V == b.V
}

func restoreMismatch(v Value, p Payload) error {
	return fmt.Errorf("value: cannot restore %s payload into %s value", p.Kind(), v.Kind())
}
