package value

import (
	"testing"
	"testing/quick"

	"flor.dev/flor/internal/codec"
	"flor.dev/flor/internal/nn"
	"flor.dev/flor/internal/opt"
	"flor.dev/flor/internal/tensor"
	"flor.dev/flor/internal/xrand"
)

// encodeDecode round-trips a payload through the tagged wire format.
func encodeDecode(t *testing.T, p Payload) Payload {
	t.Helper()
	w := codec.NewWriter()
	EncodePayload(w, p)
	got, err := DecodeTaggedPayload(codec.NewReader(w.Bytes()))
	if err != nil {
		t.Fatalf("decode %s payload: %v", p.Kind(), err)
	}
	return got
}

func TestPrimitiveSnapshotRestore(t *testing.T) {
	i := &Int{V: 7}
	snap := i.Snapshot()
	i.V = 99
	if err := i.Restore(encodeDecode(t, snap)); err != nil {
		t.Fatal(err)
	}
	if i.V != 7 {
		t.Fatalf("Int restore = %d, want 7", i.V)
	}

	f := &Float{V: 2.5}
	fsnap := f.Snapshot()
	f.V = 0
	if err := f.Restore(encodeDecode(t, fsnap)); err != nil {
		t.Fatal(err)
	}
	if f.V != 2.5 {
		t.Fatalf("Float restore = %g", f.V)
	}

	s := &String{V: "epoch-3"}
	ssnap := s.Snapshot()
	s.V = "x"
	if err := s.Restore(encodeDecode(t, ssnap)); err != nil {
		t.Fatal(err)
	}
	if s.V != "epoch-3" {
		t.Fatalf("String restore = %q", s.V)
	}

	b := &Bool{V: true}
	bsnap := b.Snapshot()
	b.V = false
	if err := b.Restore(encodeDecode(t, bsnap)); err != nil {
		t.Fatal(err)
	}
	if !b.V {
		t.Fatal("Bool restore failed")
	}
}

func TestTensorSnapshotIsolatedFromLiveMutation(t *testing.T) {
	tb := &Tensor{T: tensor.FromSlice([]float64{1, 2, 3}, 3)}
	snap := tb.Snapshot()
	tb.T.Set(99, 0) // mutate live after snapshot
	if snap.(TensorPayload).T.At(0) != 1 {
		t.Fatal("snapshot aliased live tensor")
	}
	if err := tb.Restore(encodeDecode(t, snap)); err != nil {
		t.Fatal(err)
	}
	if tb.T.At(0) != 1 {
		t.Fatal("tensor restore failed")
	}
}

func TestTensorRestorePreservesIdentity(t *testing.T) {
	// Restoring must copy into the existing tensor, not replace it: other
	// objects may hold references to the same storage.
	orig := tensor.FromSlice([]float64{1, 2}, 2)
	tb := &Tensor{T: orig}
	snap := tb.Snapshot()
	orig.Fill(0)
	if err := tb.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if tb.T != orig {
		t.Fatal("restore replaced the tensor object")
	}
	if orig.At(1) != 2 {
		t.Fatal("restore did not write through to original storage")
	}
}

func TestTensorRestoreShapeMismatch(t *testing.T) {
	tb := &Tensor{T: tensor.New(2, 2)}
	if err := tb.Restore(TensorPayload{T: tensor.New(3)}); err == nil {
		t.Fatal("shape-mismatched restore succeeded")
	}
}

func TestModelSnapshotRestoreRoundTrip(t *testing.T) {
	m := nn.NewResidualMLP(xrand.New(1), 4, 8, 8, 2, 3)
	mv := &Model{M: m}
	snap := mv.Snapshot()
	for _, p := range m.Params() {
		p.Var.Value.Fill(42)
	}
	if err := mv.Restore(encodeDecode(t, snap)); err != nil {
		t.Fatal(err)
	}
	ref := nn.NewResidualMLP(xrand.New(1), 4, 8, 8, 2, 3)
	if !nn.StatesEqual(m, ref) {
		t.Fatal("model restore did not reproduce original weights")
	}
}

func TestOptimizerSnapshotRestoreRoundTrip(t *testing.T) {
	m := nn.NewLinear("fc", xrand.New(1), 2, 2)
	o := opt.NewAdamW(m, 0.01, 0.1)
	// Give the optimizer some state.
	for _, p := range m.Params() {
		p.Var.Grad = tensor.Full(0.5, p.Var.Value.Shape()...)
	}
	o.Step()
	ov := &Optimizer{O: o}
	snap := ov.Snapshot()
	o.Step()
	o.Step()
	if err := ov.Restore(encodeDecode(t, snap)); err != nil {
		t.Fatal(err)
	}
	if !o.Snapshot().Equal(snap.(StatePayload).S) {
		t.Fatal("optimizer restore did not reproduce snapshot state")
	}
}

func TestSchedulerSnapshotRestoreRoundTrip(t *testing.T) {
	m := nn.NewLinear("fc", xrand.New(1), 2, 2)
	o := opt.NewSGD(m, 1, 0, 0)
	s := opt.NewCosineLR(o, 10)
	s.Step()
	s.Step()
	sv := &Scheduler{S: s}
	snap := sv.Snapshot()
	s.Step()
	if err := sv.Restore(encodeDecode(t, snap)); err != nil {
		t.Fatal(err)
	}
	if !s.Snapshot().Equal(snap.(StatePayload).S) {
		t.Fatal("scheduler restore did not reproduce snapshot state")
	}
}

func TestRNGSnapshotRestoreResumesStream(t *testing.T) {
	r := xrand.New(7)
	rv := &RNG{R: r}
	r.Uint64()
	snap := rv.Snapshot()
	want := r.Uint64()
	r.Uint64() // advance further
	if err := rv.Restore(encodeDecode(t, snap)); err != nil {
		t.Fatal(err)
	}
	if got := r.Uint64(); got != want {
		t.Fatalf("restored RNG drew %d, want %d", got, want)
	}
}

func TestKindMismatchRejected(t *testing.T) {
	i := &Int{}
	if err := i.Restore(FloatPayload(1)); err == nil {
		t.Fatal("Int accepted Float payload")
	}
	tb := &Tensor{T: tensor.New(1)}
	if err := tb.Restore(IntPayload(1)); err == nil {
		t.Fatal("Tensor accepted Int payload")
	}
	m := &Model{M: nn.NewLinear("fc", xrand.New(1), 1, 1)}
	if err := m.Restore(RNGPayload{}); err == nil {
		t.Fatal("Model accepted RNG payload")
	}
}

func TestEqualSemantics(t *testing.T) {
	if (&Int{V: 1}).Equal(&Int{V: 2}) {
		t.Fatal("unequal ints compared equal")
	}
	if !(&Int{V: 1}).Equal(&Int{V: 1}) {
		t.Fatal("equal ints compared unequal")
	}
	if (&Int{V: 1}).Equal(&Float{V: 1}) {
		t.Fatal("cross-kind equality")
	}
	a := &Tensor{T: tensor.Full(1, 2)}
	b := &Tensor{T: tensor.Full(1, 2)}
	if !a.Equal(b) {
		t.Fatal("identical tensors unequal")
	}
	b.T.Set(2, 0)
	if a.Equal(b) {
		t.Fatal("different tensors equal")
	}
}

func TestStatePayloadDeterministicEncoding(t *testing.T) {
	st := opt.NewState()
	st.Scalars["zeta"] = 1
	st.Scalars["alpha"] = 2
	st.Tensors["m.b"] = tensor.Full(1, 2)
	st.Tensors["m.a"] = tensor.Full(2, 2)
	enc := func() []byte {
		w := codec.NewWriter()
		EncodePayload(w, StatePayload{S: st})
		return w.Bytes()
	}
	a, b := enc(), enc()
	if string(a) != string(b) {
		t.Fatal("StatePayload encoding not deterministic (map iteration leaked)")
	}
}

func TestSizeBytesPositive(t *testing.T) {
	m := nn.NewLinear("fc", xrand.New(1), 4, 4)
	vals := []Value{
		&Int{}, &Float{}, &String{V: "x"}, &Bool{},
		&Tensor{T: tensor.New(3)},
		&Model{M: m},
		&Optimizer{O: opt.NewSGD(m, 0.1, 0.9, 0)},
		&Scheduler{S: opt.NewStepLR(opt.NewSGD(m, 0.1, 0, 0), 1, 0.5)},
		&RNG{R: xrand.New(1)},
	}
	for _, v := range vals {
		if v.SizeBytes() <= 0 {
			t.Fatalf("%s SizeBytes = %d", v.Kind(), v.SizeBytes())
		}
	}
}

func TestModelSizeTracksParameters(t *testing.T) {
	small := &Model{M: nn.NewLinear("fc", xrand.New(1), 4, 4)}
	big := &Model{M: nn.NewLinear("fc", xrand.New(1), 64, 64)}
	if big.SizeBytes() <= small.SizeBytes() {
		t.Fatal("larger model reported smaller size")
	}
}

func TestDecodeUnknownKindFails(t *testing.T) {
	w := codec.NewWriter()
	w.Uvarint(200)
	if _, err := DecodeTaggedPayload(codec.NewReader(w.Bytes())); err == nil {
		t.Fatal("unknown kind decoded")
	}
}

func TestQuickIntPayloadRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		w := codec.NewWriter()
		EncodePayload(w, IntPayload(v))
		got, err := DecodeTaggedPayload(codec.NewReader(w.Bytes()))
		return err == nil && got.(IntPayload) == IntPayload(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRNGPayloadRoundTrip(t *testing.T) {
	f := func(seed uint64, draws uint8) bool {
		r := xrand.New(seed)
		for i := 0; i < int(draws); i++ {
			r.Uint32()
		}
		rv := &RNG{R: r}
		w := codec.NewWriter()
		EncodePayload(w, rv.Snapshot())
		p, err := DecodeTaggedPayload(codec.NewReader(w.Bytes()))
		if err != nil {
			return false
		}
		r2 := &RNG{R: xrand.New(0)}
		if err := r2.Restore(p); err != nil {
			return false
		}
		return r2.R.Equal(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestLazyTensorPayloadEquivalence pins that the lazy wire-view form decoded
// by DecodePayload behaves identically to the materialized form: same encoded
// bytes, same restore result, same reported size, on-demand materialization.
func TestLazyTensorPayloadEquivalence(t *testing.T) {
	orig := tensor.Randn(xrand.New(9), 1, 5, 7)
	eager := TensorPayload{T: orig.Clone()}
	lazy := encodeDecode(t, eager).(TensorPayload)
	if lazy.T != nil {
		t.Fatal("decoded tensor payload materialized eagerly")
	}
	if got, want := lazy.SizeBytes(), eager.SizeBytes(); got != want {
		t.Fatalf("lazy SizeBytes = %d, eager = %d", got, want)
	}
	// Re-encoding the lazy form is byte-identical to encoding the tensor.
	we, wl := codec.NewWriter(), codec.NewWriter()
	EncodePayload(we, eager)
	EncodePayload(wl, lazy)
	if string(we.Bytes()) != string(wl.Bytes()) {
		t.Fatal("lazy re-encode diverges from materialized encode")
	}
	if !tensor.Equal(lazy.Tensor(), orig) {
		t.Fatal("on-demand materialization diverges")
	}
	// Restore through the zero-copy path writes through to live storage.
	live := &Tensor{T: tensor.New(5, 7)}
	if err := live.Restore(lazy); err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(live.T, orig) {
		t.Fatal("lazy restore diverges")
	}
	// Shape mismatches are still rejected before any bytes move.
	bad := &Tensor{T: tensor.New(7, 5)}
	if err := bad.Restore(lazy); err == nil {
		t.Fatal("shape-mismatched lazy restore succeeded")
	}
}
