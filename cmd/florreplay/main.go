// Command florreplay performs hindsight logging against a run directory
// created by florrun: it inserts a probe (a new log statement) into the
// recorded workload's code and replays to produce the probe's output.
//
// Usage:
//
//	florreplay -workload RsNt -dir ./run-rsnt -probe outer|inner|none
//	           [-workers 4] [-init strong|weak] [-sched static|balanced|stealing]
//	           [-scale smoke|full]
//
// The outer probe logs the model's weight norm each epoch (satisfied by
// partial replay: the training loop is skipped). The inner probe logs the
// gradient norm at every training step (the training loop re-executes, in
// parallel across -workers).
package main

import (
	"flag"
	"fmt"
	"log"

	flor "flor.dev/flor"
	"flor.dev/flor/internal/workloads"
)

func main() {
	name := flag.String("workload", "Cifr", "Table 3 workload name")
	dir := flag.String("dir", "", "run directory recorded by florrun (required)")
	probe := flag.String("probe", "outer", "hindsight probe position: outer, inner, none")
	workers := flag.Int("workers", 1, "degree of hindsight parallelism")
	initMode := flag.String("init", "strong", "worker initialization: strong or weak")
	sched := flag.String("sched", "static", "replay scheduler: static, balanced, stealing")
	scale := flag.String("scale", "full", "workload scale used at record time")
	flag.Parse()

	if *dir == "" {
		log.Fatal("florreplay: -dir is required")
	}
	spec, ok := workloads.Get(*name)
	if !ok {
		log.Fatalf("florreplay: unknown workload %q (have %v)", *name, workloads.Names())
	}
	sc := workloads.Full
	if *scale == "smoke" {
		sc = workloads.Smoke
	}
	factory := spec.Build(sc)
	switch *probe {
	case "outer":
		factory = workloads.WithOuterProbe(factory)
	case "inner":
		factory = workloads.WithInnerProbe(factory)
	case "none":
	default:
		log.Fatalf("florreplay: unknown probe %q", *probe)
	}

	opts := []flor.Option{flor.Workers(*workers)}
	if *initMode == "weak" {
		opts = append(opts, flor.Init(flor.WeakInit))
	}
	switch *sched {
	case "static":
	case "balanced":
		opts = append(opts, flor.WithScheduler(flor.SchedulerBalanced))
	case "stealing":
		opts = append(opts, flor.WithScheduler(flor.SchedulerStealing))
	default:
		log.Fatalf("florreplay: unknown scheduler %q", *sched)
	}

	res, err := flor.Replay(*dir, factory, opts...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed %s with %q probe on %d worker(s) [%s scheduler, %d steals] in %.3fs\n",
		spec.Name, *probe, res.Workers, res.Scheduler, res.Steals, float64(res.WallNs)/1e9)
	if len(res.ProbedLoops) > 0 {
		fmt.Printf("probed loops: %v\n", res.ProbedLoops)
	}
	for _, l := range res.Logs {
		fmt.Println(l)
	}
	if len(res.Anomalies) == 0 {
		fmt.Println("deferred check: replay matches record exactly (no anomalies)")
	} else {
		fmt.Printf("deferred check: %d anomalies!\n", len(res.Anomalies))
		for _, a := range res.Anomalies {
			fmt.Println("  " + a.String())
		}
	}
}
