// Command florbench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	florbench [-exp all|table3|fig5|fig7|fig10|fig11|fig12|fig13|fig14|table4|ser-vs-io|cfactor|ckpt-throughput|replay-scaleout|serve-throughput]
//	          [-scale full|smoke] [-dir DIR] [-benchdir DIR]
//
// The ckpt-throughput, replay-scaleout, and serve-throughput experiments
// additionally persist their reports as BENCH_ckpt.json, BENCH_replay.json,
// and BENCH_serve.json in -benchdir (default: the working directory),
// forming the repository's benchmark trajectory; README.md documents the
// schemas.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"flor.dev/flor/internal/bench"
	"flor.dev/flor/internal/workloads"
)

// writeBenchJSON persists an experiment report for the benchmark trajectory.
func writeBenchJSON(dir, name string, report any) error {
	js, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name), append(js, '\n'), 0o644)
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (comma separated): all, table3, fig5, fig7, fig10, fig11, fig12, fig13, fig14, table4, ser-vs-io, cfactor, ckpt-throughput, replay-scaleout, serve-throughput")
	scale := flag.String("scale", "full", "workload scale: full (paper epoch counts) or smoke")
	dir := flag.String("dir", "", "run directory (default: a temp directory)")
	benchdir := flag.String("benchdir", ".", "directory for BENCH_*.json trajectory files")
	flag.Parse()

	sc := workloads.Full
	if *scale == "smoke" {
		sc = workloads.Smoke
	}
	base := *dir
	if base == "" {
		tmp, err := os.MkdirTemp("", "florbench-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(tmp)
		base = tmp
	}
	s := bench.NewSession(base, sc, os.Stdout)

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	run := func(name string, f func() error) {
		if !all && !want[name] {
			return
		}
		if err := f(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}

	run("table3", func() error { s.Table3(); return nil })
	run("fig5", func() error { _, err := s.Fig5(10); return err })
	run("fig7", func() error { _, err := s.Fig7(); return err })
	run("fig11", func() error { _, err := s.Fig11(); return err })
	run("table4", func() error { _, err := s.Table4(); return err })
	run("fig12", func() error { _, err := s.Fig12(); return err })
	run("fig10", func() error { _, err := s.Fig10(); return err })
	run("fig13", func() error { _, err := s.Fig13(); return err })
	run("fig14", func() error { _, err := s.Fig14(); return err })
	run("ser-vs-io", func() error {
		_, err := s.SerVsIO([]string{"Wiki", "RsNt", "RnnT", "Jasp"})
		return err
	})
	run("cfactor", func() error { _, err := s.CFactor(); return err })
	run("ckpt-throughput", func() error {
		rep, err := s.CkptThroughput(12)
		if err != nil {
			return err
		}
		return writeBenchJSON(*benchdir, "BENCH_ckpt.json", rep)
	})
	run("replay-scaleout", func() error {
		rep, err := s.ReplayScaleout()
		if err != nil {
			return err
		}
		return writeBenchJSON(*benchdir, "BENCH_replay.json", rep)
	})
	run("serve-throughput", func() error {
		rep, err := s.ServeThroughput()
		if err != nil {
			return err
		}
		return writeBenchJSON(*benchdir, "BENCH_serve.json", rep)
	})

	fmt.Fprintln(os.Stderr, "florbench: done")
}
