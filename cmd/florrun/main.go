// Command florrun records one of the Table 3 workloads with Flor
// instrumentation, leaving a run directory that florreplay can query with
// hindsight log statements.
//
// Usage:
//
//	florrun -workload RsNt -dir ./run-rsnt [-scale smoke|full]
//	        [-epsilon 0.0667] [-no-adaptive] [-strategy fork|baseline|queue|plasma]
//	        [-shards 16] [-shard-dirs /mnt/a,/mnt/b] [-pool ./project/POOL]
//
// -shards records into a hash-prefix sharded checkpoint store (see
// docs/FORMATS.md); -shard-dirs spreads its packs over extra root
// directories. -pool records into a shared chunk pool, deduplicating
// checkpoint chunks against every other run attached to the same pool
// (fine-tuning families over one frozen backbone store it once). Replay
// needs no matching flags — the layout is detected from the run directory.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	flor "flor.dev/flor"
	"flor.dev/flor/internal/workloads"
)

func main() {
	name := flag.String("workload", "Cifr", "Table 3 workload name (RTE, CoLA, Cifr, RsNt, Wiki, Jasp, ImgN, RnnT)")
	dir := flag.String("dir", "", "run directory to create (required)")
	scale := flag.String("scale", "full", "workload scale: full or smoke")
	epsilon := flag.Float64("epsilon", 0, "record overhead tolerance (default 1/15)")
	noAdaptive := flag.Bool("no-adaptive", false, "materialize every loop execution")
	strategy := flag.String("strategy", "fork", "materialization strategy: fork, baseline, queue, plasma")
	shards := flag.Int("shards", 0, "hash-prefix shard fanout for the checkpoint store (power of two in [2,256]; 0 = single pack)")
	shardDirs := flag.String("shard-dirs", "", "comma-separated extra root dirs for shard packs (requires -shards)")
	pool := flag.String("pool", "", "shared chunk-pool root: dedup checkpoint chunks across every run attached to the same pool")
	flag.Parse()

	if *dir == "" {
		log.Fatal("florrun: -dir is required")
	}
	spec, ok := workloads.Get(*name)
	if !ok {
		log.Fatalf("florrun: unknown workload %q (have %v)", *name, workloads.Names())
	}
	sc := workloads.Full
	if *scale == "smoke" {
		sc = workloads.Smoke
	}

	opts := []flor.Option{}
	if *epsilon > 0 {
		opts = append(opts, flor.Epsilon(*epsilon))
	}
	if *noAdaptive {
		opts = append(opts, flor.DisableAdaptiveCheckpointing())
	}
	switch *strategy {
	case "fork":
		opts = append(opts, flor.WithStrategy(flor.StrategyFork))
	case "baseline":
		opts = append(opts, flor.WithStrategy(flor.StrategyBaseline))
	case "queue":
		opts = append(opts, flor.WithStrategy(flor.StrategyQueue))
	case "plasma":
		opts = append(opts, flor.WithStrategy(flor.StrategyPlasma))
	default:
		log.Fatalf("florrun: unknown strategy %q", *strategy)
	}
	if *shards > 0 {
		opts = append(opts, flor.Shards(*shards))
	}
	if *shardDirs != "" {
		if *shards <= 1 {
			log.Fatal("florrun: -shard-dirs requires -shards")
		}
		if *pool != "" {
			log.Fatal("florrun: -shard-dirs and -pool are mutually exclusive (pooled packs live in the pool)")
		}
		var dirs []string
		for _, d := range strings.Split(*shardDirs, ",") {
			if d = strings.TrimSpace(d); d != "" {
				dirs = append(dirs, d)
			}
		}
		opts = append(opts, flor.ShardDirs(dirs...))
	}
	if *pool != "" {
		opts = append(opts, flor.Pool(*pool))
	}

	res, err := flor.Record(*dir, spec.Build(sc), opts...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %s (%s scale) into %s\n", spec.Name, *scale, *dir)
	fmt.Printf("  wall time:    %.3fs\n", float64(res.WallNs)/1e9)
	fmt.Printf("  checkpoints:  %d (%.2f MB)\n", res.Checkpoints, float64(res.CheckpointBytes)/(1<<20))
	fmt.Printf("  log lines:    %d\n", len(res.Logs))
	for _, l := range res.Logs {
		fmt.Fprintln(os.Stderr, l)
	}
}
