// Command florctl is the fleet-side companion to flord: it fans a query out
// to N daemons and merges what comes back, so an operator watching several
// replay daemons (one per project, per team, per machine) reads one view
// instead of N browser tabs.
//
//	florctl scrape host1:7707 host2:7707   # one merged Prometheus scrape
//	florctl top host1:7707 host2:7707      # fleet table from /v1/stats
//
// scrape fetches every target's /metrics and emits a single Prometheus
// text-format document: counters and gauges with identical series labels are
// summed, histograms are merged bucket-wise (every daemon shares the same
// bucket bounds, so same-le series add), and trace-ID exemplars — which name
// traces on one specific daemon — are stripped from the merged view. Family
// and series order follow the first target that reported them, so diffs of
// consecutive merged scrapes stay stable.
//
// top fetches every target's /v1/stats and renders one row per (target,
// run): in-flight and queued queries, the age of the longest-running query,
// query counts, slow-query counts, and the run's cumulative restored bytes
// with their store-tier attribution summarized as a payload-cache share, the
// bytes borrowed from other queries' in-flight remote GETs (SFLIGHT), and
// the daemon's speculative-prefetch hit share (PF%, used/issued).
//
// Targets are host:port or full http(s) URLs; -timeout bounds each fetch.
// A target that fails to respond is reported on stderr and skipped — a
// half-down fleet still renders — but florctl exits nonzero.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"flor.dev/flor/internal/serve"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  florctl scrape [-timeout 5s] <target>...   merged Prometheus scrape
  florctl top    [-timeout 5s] <target>...   fleet view of /v1/stats

targets are host:port or http(s) URLs of flord daemons
`)
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, rest := os.Args[1], os.Args[2:]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	timeout := fs.Duration("timeout", 5*time.Second, "per-target fetch deadline")
	fs.Parse(rest)
	targets := fs.Args()
	if len(targets) == 0 {
		usage()
		os.Exit(2)
	}
	client := &http.Client{Timeout: *timeout}
	var err error
	switch cmd {
	case "scrape":
		err = runScrape(client, targets, os.Stdout)
	case "top":
		err = runTop(client, targets, os.Stdout)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "florctl:", err)
		os.Exit(1)
	}
}

// normalizeTarget turns host:port into a full base URL.
func normalizeTarget(t string) string {
	if !strings.Contains(t, "://") {
		t = "http://" + t
	}
	return strings.TrimRight(t, "/")
}

// runScrape merges every target's /metrics into one Prometheus text
// document on w. Unreachable targets are skipped with a note on stderr; the
// merge of the reachable ones still renders, but the error is reported.
func runScrape(client *http.Client, targets []string, w io.Writer) error {
	merged := newScrape()
	var failed []string
	for _, t := range targets {
		resp, err := client.Get(normalizeTarget(t) + "/metrics")
		if err != nil {
			fmt.Fprintf(os.Stderr, "florctl: %s: %v\n", t, err)
			failed = append(failed, t)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			fmt.Fprintf(os.Stderr, "florctl: %s: /metrics returned %d\n", t, resp.StatusCode)
			failed = append(failed, t)
			continue
		}
		err = merged.parse(resp.Body)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", t, err)
		}
	}
	if err := merged.render(w); err != nil {
		return err
	}
	if len(failed) > 0 {
		return fmt.Errorf("%d of %d targets unreachable: %s", len(failed), len(targets), strings.Join(failed, ", "))
	}
	return nil
}

// runTop renders one fleet table from every target's /v1/stats.
func runTop(client *http.Client, targets []string, w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "TARGET\tRUN\tINFL\tQUEUED\tOLDEST\tREPLAYS\tSAMPLES\tERRORS\tSLOW\tRESTORED\tCACHE%\tSFLIGHT\tPF%")
	var failed []string
	for _, t := range targets {
		st, err := fetchStats(client, t)
		if err != nil {
			fmt.Fprintf(os.Stderr, "florctl: %s: %v\n", t, err)
			failed = append(failed, t)
			continue
		}
		ids := make([]string, 0, len(st.Runs))
		for id := range st.Runs {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		label := t
		if st.Draining {
			label += " (draining)"
		}
		// Prefetch accounting is daemon-wide (speculation serves whichever
		// query's restore front arrives first), so the hit share repeats on
		// each of the target's rows: issued bytes a restore later consumed.
		pfPct := "-"
		if st.Prefetch != nil && st.Prefetch.IssuedBytes > 0 {
			pfPct = fmt.Sprintf("%.0f%%", 100*float64(st.Prefetch.UsedBytes)/float64(st.Prefetch.IssuedBytes))
		}
		if len(ids) == 0 {
			fmt.Fprintf(tw, "%s\t-\t-\t-\t-\t-\t-\t-\t-\t-\t-\t-\t%s\n", label, pfPct)
			continue
		}
		for _, id := range ids {
			rs := st.Runs[id]
			oldest := "-"
			if rs.OldestQueryAgeSeconds > 0 {
				oldest = fmt.Sprintf("%.1fs", rs.OldestQueryAgeSeconds)
			}
			// The cache share of the run's tier-attributed fetch traffic:
			// how much of its restore volume the payload cache absorbed.
			cachePct := "-"
			if total := rs.Cost.Fetch.TotalBytes(); total > 0 {
				cachePct = fmt.Sprintf("%.0f%%", 100*float64(rs.Cost.Fetch.CacheBytes)/float64(total))
			}
			// Bytes this run's queries borrowed from another query's
			// in-flight remote GET instead of issuing their own.
			sflight := "-"
			if rs.Cost.Fetch.SingleflightBytes > 0 {
				sflight = fmtBytes(rs.Cost.Fetch.SingleflightBytes)
			}
			fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%s\t%d\t%d\t%d\t%d\t%s\t%s\t%s\t%s\n",
				label, id, rs.Inflight, rs.Queued, oldest,
				rs.Replays, rs.Samples, rs.Errors, rs.SlowQueries,
				fmtBytes(rs.Cost.RestoredBytes), cachePct, sflight, pfPct)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if len(failed) > 0 {
		return fmt.Errorf("%d of %d targets unreachable: %s", len(failed), len(targets), strings.Join(failed, ", "))
	}
	return nil
}

func fetchStats(client *http.Client, target string) (*serve.Stats, error) {
	resp, err := client.Get(normalizeTarget(target) + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/v1/stats returned %d", resp.StatusCode)
	}
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// fmtBytes renders a byte count with a binary unit suffix.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
