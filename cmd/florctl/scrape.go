package main

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file merges Prometheus text-format (0.0.4) scrapes from several
// daemons into one document. The merge is value-level and generic — it knows
// nothing about individual metric names, so the obs catalog stays the single
// authority on the namespace:
//
//   - series with identical name+labels sum (counters and gauges add across
//     daemons; histogram _bucket/_sum/_count series add bucket-wise, which
//     is exactly the correct histogram merge because every daemon renders
//     the same bucket bounds),
//   - OpenMetrics-style exemplars ("value # {trace_id=...} v") are stripped:
//     a trace ID names a trace on one daemon and is meaningless on a merged
//     view,
//   - family order and per-family series order follow the first target that
//     reported them; series only later targets know are appended within
//     their family, so buckets stay contiguous and consecutive merged
//     scrapes diff cleanly.

// family is one metric family: HELP/TYPE metadata plus its series in
// first-seen order.
type family struct {
	name  string
	help  string
	typ   string
	order []string
	vals  map[string]float64
}

// scrape accumulates one or more parsed scrapes, families in first-seen
// order.
type scrape struct {
	order []string
	fams  map[string]*family
}

func newScrape() *scrape {
	return &scrape{fams: map[string]*family{}}
}

func (s *scrape) family(name string) *family {
	f, ok := s.fams[name]
	if !ok {
		f = &family{name: name, vals: map[string]float64{}}
		s.fams[name] = f
		s.order = append(s.order, name)
	}
	return f
}

// familyFor resolves the family a series line belongs to: the series name
// itself, or — for histogram component series — the name with its
// _bucket/_sum/_count suffix stripped, when that family was declared by a
// TYPE line.
func (s *scrape) familyFor(seriesName string) *family {
	if f, ok := s.fams[seriesName]; ok {
		return f
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(seriesName, suffix)
		if !ok {
			continue
		}
		if f, ok := s.fams[base]; ok {
			return f
		}
	}
	return s.family(seriesName)
}

// parse folds one scrape into the merge.
func (s *scrape) parse(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "# HELP "), strings.HasPrefix(line, "# TYPE "):
			parts := strings.SplitN(line, " ", 4) // "#", kind, name, text
			if len(parts) < 3 {
				continue
			}
			f := s.family(parts[2])
			text := ""
			if len(parts) == 4 {
				text = parts[3]
			}
			if parts[1] == "HELP" && f.help == "" {
				f.help = text
			}
			if parts[1] == "TYPE" && f.typ == "" {
				f.typ = text
			}
		case strings.HasPrefix(line, "#"):
			continue
		default:
			// Series line: name{labels} value, optionally followed by an
			// exemplar suffix (" # {...} v") on histogram buckets.
			if i := strings.Index(line, " # "); i >= 0 {
				line = strings.TrimSpace(line[:i])
			}
			sp := strings.LastIndexByte(line, ' ')
			if sp < 0 {
				return fmt.Errorf("malformed scrape line %q", line)
			}
			key, valStr := line[:sp], line[sp+1:]
			v, err := strconv.ParseFloat(valStr, 64)
			if err != nil {
				return fmt.Errorf("malformed scrape value %q: %v", line, err)
			}
			name := key
			if i := strings.IndexByte(name, '{'); i >= 0 {
				name = name[:i]
			}
			f := s.familyFor(name)
			if _, seen := f.vals[key]; !seen {
				f.order = append(f.order, key)
			}
			f.vals[key] += v
		}
	}
	return sc.Err()
}

// render writes the merged document in Prometheus text format.
func (s *scrape) render(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, name := range s.order {
		f := s.fams[name]
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", name, f.help)
		}
		if f.typ != "" {
			fmt.Fprintf(bw, "# TYPE %s %s\n", name, f.typ)
		}
		for _, key := range f.order {
			fmt.Fprintf(bw, "%s %s\n", key, strconv.FormatFloat(f.vals[key], 'g', -1, 64))
		}
	}
	return bw.Flush()
}
