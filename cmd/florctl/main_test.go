package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"flor.dev/flor/internal/serve"
	"flor.dev/flor/internal/store"
)

// scrapeA and scrapeB mimic two flord daemons' /metrics output, including
// trace-ID exemplars on histogram buckets, a series only one daemon knows
// (run "beta"), and a family only the second daemon reports.
const scrapeA = `# HELP flor_serve_queries_total Queries served, by run and kind.
# TYPE flor_serve_queries_total counter
flor_serve_queries_total{kind="replay",run="alpha"} 3
flor_serve_queries_total{kind="sample",run="alpha"} 1
# HELP flor_serve_inflight In-flight queries per run.
# TYPE flor_serve_inflight gauge
flor_serve_inflight{run="alpha"} 1
# HELP flor_serve_query_seconds Query wall time by kind.
# TYPE flor_serve_query_seconds histogram
flor_serve_query_seconds_bucket{kind="replay",le="0.001"} 1 # {trace_id="t000002"} 0.0009
flor_serve_query_seconds_bucket{kind="replay",le="+Inf"} 3 # {trace_id="t000003"} 1.5
flor_serve_query_seconds_sum{kind="replay"} 2.25
flor_serve_query_seconds_count{kind="replay"} 3
`

const scrapeB = `# HELP flor_serve_queries_total Queries served, by run and kind.
# TYPE flor_serve_queries_total counter
flor_serve_queries_total{kind="replay",run="alpha"} 2
flor_serve_queries_total{kind="replay",run="beta"} 5
# HELP flor_serve_inflight In-flight queries per run.
# TYPE flor_serve_inflight gauge
flor_serve_inflight{run="alpha"} 2
# HELP flor_serve_query_seconds Query wall time by kind.
# TYPE flor_serve_query_seconds histogram
flor_serve_query_seconds_bucket{kind="replay",le="0.001"} 2
flor_serve_query_seconds_bucket{kind="replay",le="+Inf"} 4
flor_serve_query_seconds_sum{kind="replay"} 0.5
flor_serve_query_seconds_count{kind="replay"} 4
# HELP flor_store_gc_passes_total Garbage-collection passes.
# TYPE flor_store_gc_passes_total counter
flor_store_gc_passes_total 1
`

// goldenMerged pins the merged document: counters and gauges summed,
// histogram buckets merged bucket-wise, exemplars stripped, family and
// series order from the first target with later-only series appended within
// their family.
const goldenMerged = `# HELP flor_serve_queries_total Queries served, by run and kind.
# TYPE flor_serve_queries_total counter
flor_serve_queries_total{kind="replay",run="alpha"} 5
flor_serve_queries_total{kind="sample",run="alpha"} 1
flor_serve_queries_total{kind="replay",run="beta"} 5
# HELP flor_serve_inflight In-flight queries per run.
# TYPE flor_serve_inflight gauge
flor_serve_inflight{run="alpha"} 3
# HELP flor_serve_query_seconds Query wall time by kind.
# TYPE flor_serve_query_seconds histogram
flor_serve_query_seconds_bucket{kind="replay",le="0.001"} 3
flor_serve_query_seconds_bucket{kind="replay",le="+Inf"} 7
flor_serve_query_seconds_sum{kind="replay"} 2.75
flor_serve_query_seconds_count{kind="replay"} 7
# HELP flor_store_gc_passes_total Garbage-collection passes.
# TYPE flor_store_gc_passes_total counter
flor_store_gc_passes_total 1
`

func metricsServer(t *testing.T, body string) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write([]byte(body))
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestScrapeMergeGolden is the CI golden for `florctl scrape`: two daemons'
// scrapes merge into exactly this document.
func TestScrapeMergeGolden(t *testing.T) {
	a := metricsServer(t, scrapeA)
	b := metricsServer(t, scrapeB)

	var out bytes.Buffer
	if err := runScrape(a.Client(), []string{a.URL, b.URL}, &out); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); got != goldenMerged {
		t.Errorf("merged scrape mismatch:\n--- got ---\n%s--- want ---\n%s", got, goldenMerged)
	}

	// The merge is order-sensitive only in presentation: swapping targets
	// reorders series but preserves every merged value.
	var swapped bytes.Buffer
	if err := runScrape(a.Client(), []string{b.URL, a.URL}, &swapped); err != nil {
		t.Fatal(err)
	}
	wantLines := map[string]bool{}
	for _, l := range strings.Split(strings.TrimSpace(goldenMerged), "\n") {
		wantLines[l] = true
	}
	for _, l := range strings.Split(strings.TrimSpace(swapped.String()), "\n") {
		if !wantLines[l] {
			t.Errorf("swapped merge produced unexpected line %q", l)
		}
	}
}

// TestScrapeUnreachableTarget checks a half-down fleet still renders the
// reachable targets' merge while the command reports failure.
func TestScrapeUnreachableTarget(t *testing.T) {
	a := metricsServer(t, scrapeA)
	var out bytes.Buffer
	err := runScrape(a.Client(), []string{a.URL, "http://127.0.0.1:1"}, &out)
	if err == nil {
		t.Fatal("no error for an unreachable target")
	}
	if !strings.Contains(out.String(), `flor_serve_queries_total{kind="replay",run="alpha"} 3`) {
		t.Errorf("reachable target's metrics missing from partial merge:\n%s", out.String())
	}
}

// TestTopFleetTable checks `florctl top` renders one row per (target, run)
// from /v1/stats, including the new cost and age columns.
func TestTopFleetTable(t *testing.T) {
	stats := serve.Stats{
		Runs: map[string]serve.RunStats{
			"alpha": {
				Replays: 4, Samples: 2, SlowQueries: 1, Inflight: 1,
				OldestQueryAgeSeconds: 2.5,
				Cost: serve.QueryCost{
					RestoredBytes: 3 << 20,
					Fetch: store.FetchSnapshot{
						ScatterBytes: 1 << 20, CacheBytes: 1 << 20,
						SingleflightBytes: 512 << 10,
					},
				},
			},
		},
		Prefetch: &store.PrefetchSnapshot{IssuedBytes: 4 << 20, UsedBytes: 3 << 20},
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/stats" {
			http.NotFound(w, r)
			return
		}
		json.NewEncoder(w).Encode(stats)
	}))
	t.Cleanup(ts.Close)

	var out bytes.Buffer
	if err := runTop(ts.Client(), []string{ts.URL}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	lines := strings.Split(strings.TrimSpace(text), "\n")
	if len(lines) != 2 {
		t.Fatalf("top rendered %d lines, want header + 1 row:\n%s", len(lines), text)
	}
	// Cache share: 1MiB of the 2.5MiB tier-attributed total (scatter + cache
	// + singleflight) = 40%. Prefetch hit share: 3MiB used of 4MiB issued.
	for _, want := range []string{"alpha", "2.5s", "3.0MiB", "40%", "512.0KiB", "75%", "RESTORED", "OLDEST", "SFLIGHT", "PF%"} {
		if !strings.Contains(text, want) {
			t.Errorf("top output missing %q:\n%s", want, text)
		}
	}
}
