// Command flord is the multi-run replay serving daemon: it registers
// recordings, keeps their checkpoint stores hot in an LRU (manifests
// replayed once, decoded payloads cached across queries), and serves
// concurrent replay and sample queries over HTTP/JSON through one shared,
// admission-controlled worker pool.
//
// Replay probes are Go closures, so a standalone binary can only serve
// programs it knows how to build; flord serves the Table 3 workloads
// (internal/workloads) with their outer/inner probe variants. Programs of
// your own are served by embedding the daemon instead: see flor.Serve.
//
// Usage:
//
//	flord -demo                         # record two smoke runs, serve them
//	flord -record ImgN,Jasp -dir runs   # record (or reuse) named workloads
//	flord -record ImgN,Jasp -pool       # runs share one chunk pool (<dir>/POOL)
//	flord -addr :7707 -drain-timeout 30s ...
//
// On SIGINT/SIGTERM the daemon drains gracefully: the listener stops
// accepting, queries begun after the signal get 503, in-flight replays
// finish up to -drain-timeout, then the stores close and the process
// exits.
//
// Endpoints:
//
//	GET  /v1/runs
//	POST /v1/runs               {"id":"x","dir":"...","program":"ImgN"} — register a
//	                            recorded dir against a Table 3 workload; dirs are
//	                            confined under -dir, and unknown store formats 400
//	POST /v1/runs/{id}/replay   {"probe":"outer","workers":4,"scheduler":"stealing"}
//	GET  /v1/runs/{id}/logs?iters=3,7&probe=outer
//	GET  /v1/stats
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"flor.dev/flor/internal/core"
	"flor.dev/flor/internal/script"
	"flor.dev/flor/internal/serve"
	"flor.dev/flor/internal/workloads"
)

func main() {
	addr := flag.String("addr", ":7707", "HTTP listen address")
	dir := flag.String("dir", "", "directory holding one run subdirectory per workload (default: a temp directory)")
	record := flag.String("record", "", "comma-separated Table 3 workload names to record (if absent) and serve, e.g. ImgN,Jasp")
	demo := flag.Bool("demo", false, "shorthand for -record ImgN,Jasp -scale smoke")
	scale := flag.String("scale", "smoke", "workload scale for -record: smoke or full")
	slots := flag.Int("slots", 0, "global worker-pool slot budget (default: GOMAXPROCS)")
	inflight := flag.Int("max-inflight", 2, "max in-flight queries per run")
	queue := flag.Int("max-queue", 8, "max queued queries per run; beyond it queries get 429 (negative: no queueing)")
	queueTimeout := flag.Duration("queue-timeout", 30*time.Second, "queued-query deadline; beyond it queries get 504")
	storeCache := flag.Int("store-cache", 8, "open-store LRU capacity")
	workers := flag.Int("workers", 2, "default replay parallelism per query")
	pool := flag.Bool("pool", false, "record the workloads into one shared chunk pool (<dir>/POOL): sibling runs dedup chunks and share decoded payloads")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-drain deadline on SIGINT/SIGTERM")
	flag.Parse()

	names := *record
	if *demo && names == "" {
		names = "ImgN,Jasp"
	}
	if names == "" {
		log.Fatal("flord: nothing to serve; pass -demo or -record <workloads>")
	}
	sc := workloads.Smoke
	if *scale == "full" {
		sc = workloads.Full
	}
	base := *dir
	if base == "" {
		// No cleanup: the daemon runs until killed, so a deferred remove
		// would never execute; recordings are reusable across restarts via
		// -dir anyway.
		tmp, err := os.MkdirTemp("", "flord-*")
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("flord: recording into %s (pass -dir to choose and reuse)", tmp)
		base = tmp
	}

	// Every Table 3 workload goes into the program library, so recorded
	// directories can also be registered over HTTP (POST /v1/runs) against a
	// workload name; bad directories (e.g. an unknown store format) 400.
	library := map[string]map[string]func() *script.Program{}
	for _, name := range workloads.Names() {
		spec, ok := workloads.Get(name)
		if !ok {
			continue
		}
		factory := spec.Build(sc)
		library[name] = map[string]func() *script.Program{
			"base":  factory,
			"outer": workloads.WithOuterProbe(factory),
			"inner": workloads.WithInnerProbe(factory),
		}
	}
	srv := serve.New(serve.Options{
		Addr:              *addr,
		Slots:             *slots,
		MaxInflightPerRun: *inflight,
		MaxQueuePerRun:    *queue,
		QueueTimeout:      *queueTimeout,
		StoreCacheSize:    *storeCache,
		DefaultWorkers:    *workers,
		Library:           library,
		RegisterRoot:      base,
	})
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		factories, ok := library[name]
		if !ok {
			log.Fatalf("flord: unknown workload %q (have %v)", name, workloads.Names())
		}
		runDir := filepath.Join(base, name)
		if _, err := os.Stat(filepath.Join(runDir, "MANIFEST")); err != nil {
			log.Printf("flord: recording %s into %s ...", name, runDir)
			recOpts := core.RecordOptions{}
			if *pool {
				recOpts.Pool = filepath.Join(base, "POOL")
			}
			if _, err := core.Record(runDir, factories["base"], recOpts); err != nil {
				log.Fatalf("flord: record %s: %v", name, err)
			}
		} else {
			log.Printf("flord: reusing recording %s", runDir)
		}
		if err := srv.Register(serve.RunConfig{
			ID:        name,
			Dir:       runDir,
			Factories: library[name],
		}); err != nil {
			log.Fatalf("flord: %v", err)
		}
		log.Printf("flord: serving run %q (probes: base, outer, inner)", name)
	}

	// Graceful drain: on SIGINT/SIGTERM stop accepting, finish in-flight
	// replays up to the deadline, then close the stores and exit.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := <-sigs
		log.Printf("flord: %v: draining (deadline %v) ...", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("flord: drain deadline exceeded: %v", err)
			return
		}
		log.Printf("flord: drained cleanly")
	}()

	log.Printf("flord: listening on %s", *addr)
	err := srv.ListenAndServe()
	if errors.Is(err, http.ErrServerClosed) {
		<-done // a signal is draining; let it finish before exiting
		return
	}
	log.Fatal(err)
}
