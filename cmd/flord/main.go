// Command flord is the multi-run replay serving daemon: it registers
// recordings, keeps their checkpoint stores hot in an LRU (manifests
// replayed once, decoded payloads cached across queries), and serves
// concurrent replay and sample queries over HTTP/JSON through one shared,
// admission-controlled worker pool.
//
// Replay probes are Go closures, so a standalone binary can only serve
// programs it knows how to build; flord serves the Table 3 workloads
// (internal/workloads) with their outer/inner probe variants. Programs of
// your own are served by embedding the daemon instead: see flor.Serve.
//
// Usage:
//
//	flord -demo                         # record two smoke runs, serve them
//	flord -record ImgN,Jasp -dir runs   # record (or reuse) named workloads
//	flord -record ImgN,Jasp -pool       # runs share one chunk pool (<dir>/POOL)
//	flord -addr :7707 -drain-timeout 30s ...
//	flord -demo -log-level debug        # structured key=value logs to stderr
//	flord -demo -debug-addr :6060       # pprof profiling listener
//	flord -demo -trace-dir traces -slow-query 250ms -trace-sample 10
//	flord -demo -remote /mnt/pool -cache-dir cache -cache-max-bytes 268435456
//
// With -remote the daemon is stateless with respect to pack bytes: recorded
// runs are uploaded to the shared object pool (under a writer lease, so two
// daemons cannot race an upload or compaction of the same prefix) and served
// back through ranged GETs and a local read-through chunk-cache tier
// (-cache-dir, -cache-max-bytes). -prefetch N additionally warms the cache
// tier N main-loop iterations ahead of each replay worker's restore front
// (plan-driven speculative readahead), and POST /v1/runs/{id}/warm pulls a
// whole run's checkpoint content into the tier ahead of any query. -remote
// is incompatible with -pool: pool-attached stores refuse backend overrides.
//
// On SIGINT/SIGTERM the daemon drains gracefully: the listener stops
// accepting, queries begun after the signal get 503, in-flight replays
// finish up to -drain-timeout, then the stores close and the process
// exits.
//
// Endpoints:
//
//	GET  /v1/runs
//	POST /v1/runs               {"id":"x","dir":"...","program":"ImgN"} — register a
//	                            recorded dir against a Table 3 workload; dirs are
//	                            confined under -dir, and unknown store formats 400
//	POST /v1/runs/{id}/replay   {"probe":"outer","workers":4,"scheduler":"stealing"}
//	POST /v1/runs/{id}/warm     warm a remote run's chunk-cache tier (synchronous)
//	GET  /v1/runs/{id}/logs?iters=3,7&probe=outer
//	GET  /v1/runs/{id}/trace/{trace_id}
//	GET  /v1/stats
//	GET  /v1/debug/tasks        background-task traces (GC, spool passes)
//	GET  /v1/debug/slow?limit=N slow-query log (404 without -trace-dir)
//	GET  /metrics               Prometheus text format (unless -metrics=false)
//
// With -trace-dir query traces spill to a durable on-disk trace store that
// survives restarts: head-sampled one-in--trace-sample, with queries slower
// than -slow-query always kept and logged; -trace-max-bytes and
// -trace-max-age bound the store. Several daemons are watched at once with
// the florctl companion (florctl top / florctl scrape).
//
// With -debug-addr a second listener serves net/http/pprof at
// /debug/pprof/ for CPU, heap and goroutine profiling of a live daemon.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"flor.dev/flor/internal/core"
	"flor.dev/flor/internal/obs"
	"flor.dev/flor/internal/script"
	"flor.dev/flor/internal/serve"
	"flor.dev/flor/internal/store/remote"
	"flor.dev/flor/internal/workloads"
)

func main() {
	addr := flag.String("addr", ":7707", "HTTP listen address")
	dir := flag.String("dir", "", "directory holding one run subdirectory per workload (default: a temp directory)")
	record := flag.String("record", "", "comma-separated Table 3 workload names to record (if absent) and serve, e.g. ImgN,Jasp")
	demo := flag.Bool("demo", false, "shorthand for -record ImgN,Jasp -scale smoke")
	scale := flag.String("scale", "smoke", "workload scale for -record: smoke or full")
	slots := flag.Int("slots", 0, "global worker-pool slot budget (default: GOMAXPROCS)")
	inflight := flag.Int("max-inflight", 2, "max in-flight queries per run")
	queue := flag.Int("max-queue", 8, "max queued queries per run; beyond it queries get 429 (negative: no queueing)")
	queueTimeout := flag.Duration("queue-timeout", 30*time.Second, "queued-query deadline; beyond it queries get 504")
	storeCache := flag.Int("store-cache", 8, "open-store LRU capacity")
	workers := flag.Int("workers", 2, "default replay parallelism per query")
	pool := flag.Bool("pool", false, "record the workloads into one shared chunk pool (<dir>/POOL): sibling runs dedup chunks and share decoded payloads")
	remoteRoot := flag.String("remote", "", "shared remote object-pool root: recorded runs upload there and serve through ranged GETs + the chunk-cache tier (incompatible with -pool)")
	cacheDir := flag.String("cache-dir", "", "chunk-cache tier block directory for -remote (empty: in-memory blocks; cleared on startup)")
	cacheMaxBytes := flag.Int64("cache-max-bytes", 256<<20, "chunk-cache tier size budget for -remote (negative: no cache tier, every read goes remote)")
	prefetch := flag.Int("prefetch", 0, "plan-driven readahead depth in main-loop iterations for remote-backed replays: workers warm the chunk-cache tier that far ahead of the restore front (0 disables)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-drain deadline on SIGINT/SIGTERM")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
	metrics := flag.Bool("metrics", true, "enable the metrics registry served at /metrics")
	debugAddr := flag.String("debug-addr", "", "optional listen address for the net/http/pprof profiling endpoints (disabled when empty)")
	traceDir := flag.String("trace-dir", "", "directory for the durable trace store; empty keeps traces in memory only")
	traceRing := flag.Int("trace-ring", 0, "per-run in-memory trace ring capacity (default 16)")
	traceSample := flag.Int("trace-sample", 1, "keep one in N traces in the durable store (slow queries always kept)")
	slowQuery := flag.Duration("slow-query", 0, "queries at or above this duration are logged and always traced (0 disables)")
	traceMaxBytes := flag.Int64("trace-max-bytes", 64<<20, "durable trace store size bound before old segments prune")
	traceMaxAge := flag.Duration("trace-max-age", 7*24*time.Hour, "durable trace store segment age bound")
	flag.Parse()

	logger := obs.NewLogger(os.Stderr, obs.LevelInfo)
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		logger.Error("bad -log-level", "err", err)
		os.Exit(1)
	}
	logger.SetLevel(level)
	fatal := func(msg string, kv ...any) {
		logger.Error(msg, kv...)
		os.Exit(1)
	}

	// Metrics handles resolve from the package default at component
	// construction, so the registry must be enabled before serve.New — runs
	// registered later pick it up, components constructed earlier stay dark.
	if *metrics {
		obs.Enable()
	}

	names := *record
	if *demo && names == "" {
		names = "ImgN,Jasp"
	}
	if names == "" {
		fatal("nothing to serve; pass -demo or -record <workloads>")
	}
	sc := workloads.Smoke
	if *scale == "full" {
		sc = workloads.Full
	}
	base := *dir
	if base == "" {
		// No cleanup: the daemon runs until killed, so a deferred remove
		// would never execute; recordings are reusable across restarts via
		// -dir anyway.
		tmp, err := os.MkdirTemp("", "flord-*")
		if err != nil {
			fatal("temp dir", "err", err)
		}
		logger.Info("recording into temp dir (pass -dir to choose and reuse)", "dir", tmp)
		base = tmp
	}

	// Every Table 3 workload goes into the program library, so recorded
	// directories can also be registered over HTTP (POST /v1/runs) against a
	// workload name; bad directories (e.g. an unknown store format) 400.
	library := map[string]map[string]func() *script.Program{}
	for _, name := range workloads.Names() {
		spec, ok := workloads.Get(name)
		if !ok {
			continue
		}
		factory := spec.Build(sc)
		library[name] = map[string]func() *script.Program{
			"base":  factory,
			"outer": workloads.WithOuterProbe(factory),
			"inner": workloads.WithInnerProbe(factory),
		}
	}
	if *remoteRoot != "" && *pool {
		fatal("-remote is incompatible with -pool: pool-attached stores refuse backend overrides")
	}
	var remotePool remote.ObjectStore
	if *remoteRoot != "" {
		fs, err := remote.NewFSStore(*remoteRoot)
		if err != nil {
			fatal("remote pool", "root", *remoteRoot, "err", err)
		}
		remotePool = remote.Retry(fs, remote.Policy{})
	}

	srv := serve.New(serve.Options{
		Addr:               *addr,
		Slots:              *slots,
		MaxInflightPerRun:  *inflight,
		MaxQueuePerRun:     *queue,
		QueueTimeout:       *queueTimeout,
		StoreCacheSize:     *storeCache,
		DefaultWorkers:     *workers,
		Library:            library,
		RegisterRoot:       base,
		TraceRing:          *traceRing,
		TraceDir:           *traceDir,
		TraceSampleN:       *traceSample,
		SlowQueryThreshold: *slowQuery,
		TraceStoreMaxBytes: *traceMaxBytes,
		TraceStoreMaxAge:   *traceMaxAge,
		Remote:             *remoteRoot,
		CacheDir:           *cacheDir,
		CacheMaxBytes:      *cacheMaxBytes,
		Prefetch:           *prefetch,
	})
	if err := srv.TraceStoreErr(); err != nil {
		fatal("trace store open failed", "dir", *traceDir, "err", err)
	}
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		factories, ok := library[name]
		if !ok {
			fatal("unknown workload", "name", name, "have", strings.Join(workloads.Names(), ","))
		}
		runDir := filepath.Join(base, name)
		if _, err := os.Stat(filepath.Join(runDir, "MANIFEST")); err != nil {
			logger.Info("recording workload", "name", name, "dir", runDir)
			recOpts := core.RecordOptions{}
			if *pool {
				recOpts.Pool = filepath.Join(base, "POOL")
			}
			if _, err := core.Record(runDir, factories["base"], recOpts); err != nil {
				fatal("record failed", "name", name, "err", err)
			}
		} else {
			logger.Info("reusing recording", "name", name, "dir", runDir)
		}
		cfg := serve.RunConfig{ID: name, Dir: runDir, Factories: library[name]}
		if remotePool != nil {
			// Upload under the run's writer lease so a second daemon pointed
			// at the same pool cannot race this upload (or a later
			// compaction) of the prefix. Uploads are idempotent: objects the
			// pool already holds at the right size are skipped.
			host, _ := os.Hostname()
			lease, err := remote.AcquireLease(remotePool, remote.LeaseKey(name), remote.LeaseConfig{
				Owner: fmt.Sprintf("%s:%d", host, os.Getpid()),
			})
			if err != nil {
				fatal("writer lease", "run", name, "err", err)
			}
			n, err := remote.UploadRun(remotePool, runDir, name)
			if rerr := lease.Release(); rerr != nil {
				logger.Warn("lease release failed", "run", name, "err", rerr)
			}
			if err != nil {
				fatal("upload failed", "run", name, "err", err)
			}
			logger.Info("uploaded run", "run", name, "objects", n)
			// Serve the remote copy: the control plane re-fetches into a
			// scratch dir and pack reads go through the cache tier.
			cfg.Dir = filepath.Join(base, ".remote-ctl", name)
			cfg.Remote = true
		}
		if err := srv.Register(cfg); err != nil {
			fatal("register failed", "name", name, "err", err)
		}
		logger.Info("serving run", "run", name, "probes", "base,outer,inner", "remote", cfg.Remote)
	}

	if *debugAddr != "" {
		// Opt-in profiling listener, separate from the API address so an
		// operator can firewall it independently. Explicit handler
		// registrations rather than the DefaultServeMux side effect: only
		// pprof is exposed here.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func(addr string) {
			logger.Info("pprof listening", "addr", addr)
			if err := http.ListenAndServe(addr, dmux); err != nil {
				logger.Warn("pprof listener failed", "addr", addr, "err", err)
			}
		}(*debugAddr)
	}

	// Graceful drain: on SIGINT/SIGTERM stop accepting, finish in-flight
	// replays up to the deadline, then close the stores and exit.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := <-sigs
		logger.Info("drain begin", "signal", sig.String(), "deadline", drainTimeout.String(), "inflight", srv.InflightQueries())
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Error("drain deadline exceeded", "err", err, "inflight", srv.InflightQueries())
			return
		}
		logger.Info("drain end", "inflight", srv.InflightQueries())
	}()

	logger.Info("listening", "addr", *addr, "metrics", *metrics)
	err = srv.ListenAndServe()
	if errors.Is(err, http.ErrServerClosed) {
		<-done // a signal is draining; let it finish before exiting
		return
	}
	fatal("listen failed", "err", err)
}
