// Hindsight parallelism (paper §5.4): an inner-loop probe forces the
// training loop to re-execute; Flor partitions the epochs across workers
// that initialize independently from checkpoints and replay their segments
// coordination-free. This example compares sequential replay against
// parallel replay with strong and weak worker initialization, and verifies
// that all three produce identical hindsight logs.
//
//	go run ./examples/parallel_replay
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	flor "flor.dev/flor"
	"flor.dev/flor/internal/workloads"
)

func main() {
	dir, err := os.MkdirTemp("", "flor-parallel-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Record the RsNt workload (ResNet-152 analogue, the paper's Figure 13
	// subject) at smoke scale.
	spec, _ := workloads.Get("RsNt")
	factory := spec.Build(workloads.Smoke)
	rec, err := flor.Record(dir, factory, flor.DisableAdaptiveCheckpointing())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded RsNt: %d epochs, %d checkpoints\n",
		spec.Epochs(workloads.Smoke), rec.Checkpoints)

	// Probe the training loop: gradient norms at every step.
	probed := workloads.WithInnerProbe(factory)

	type result struct {
		name string
		res  *flor.ReplayResult
	}
	var results []result
	for _, cfg := range []struct {
		name string
		opts []flor.Option
	}{
		{"sequential (G=1)", []flor.Option{flor.Workers(1)}},
		{"parallel strong (G=3)", []flor.Option{flor.Workers(3), flor.Init(flor.StrongInit)}},
		{"parallel weak (G=3)", []flor.Option{flor.Workers(3), flor.Init(flor.WeakInit)}},
	} {
		res, err := flor.Replay(dir, probed, cfg.opts...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %d workers, %.3fs, %d log lines, %d anomalies\n",
			cfg.name, res.Workers, float64(res.WallNs)/1e9, len(res.Logs), len(res.Anomalies))
		results = append(results, result{cfg.name, res})
	}

	// Coordination-free parallelism must not change the merged output: every
	// configuration yields the identical log stream.
	base := strings.Join(results[0].res.Logs, "\n")
	for _, r := range results[1:] {
		if strings.Join(r.res.Logs, "\n") != base {
			log.Fatalf("%s produced different logs than sequential replay", r.name)
		}
	}
	fmt.Println("\nall configurations produced identical hindsight logs:")
	for _, l := range results[0].res.Logs {
		if flor.LogLabel(l) == "hindsight_grad_norm" {
			fmt.Println("  " + l)
		}
	}
}
