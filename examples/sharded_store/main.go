// Sharded checkpoint store: spread a run's chunk packs over several root
// directories (one device or mount per root), spool checkpoints into them
// from concurrent writers, and read everything back through the flag-free
// open path.
//
//	go run ./examples/sharded_store
//
// The demo drives the store API directly (record-time integration is one
// option away: flor.Record(dir, factory, flor.Shards(16))). It shows the
// three things the sharded layout buys:
//
//  1. Scale-out past one disk: packs land across multiple roots, chosen
//     here as ./shard-a and ./shard-b next to the run directory. The root
//     list persists in the run directory's SHARDS file, so replay, the
//     serving daemon, and this program's read-back phase all find the
//     packs with a plain store.Open / store.OpenReadOnly.
//  2. Concurrent spooling: several goroutines PutSections at once; shards
//     serialize their own appends, so writers contend per shard instead of
//     on one global pack lock.
//  3. Incremental background spool: Spool() recompresses only the shards
//     that grew since the last pass — on a frozen-backbone workload that is
//     one or two shards per epoch, not the whole pack.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"

	"flor.dev/flor/internal/ckptfmt"
	"flor.dev/flor/internal/store"
	"flor.dev/flor/internal/xrand"
)

// payload builds n bytes of deterministic, incompressible data — a stand-in
// for trained float tensors.
func payload(n int, seed uint64) []byte {
	rng := xrand.New(seed)
	b := make([]byte, n)
	for i := 0; i+8 <= n; i += 8 {
		v := rng.Uint64()
		for j := 0; j < 8; j++ {
			b[i+j] = byte(v >> (8 * j))
		}
	}
	return b
}

func main() {
	base, err := os.MkdirTemp("", "flor-sharded-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(base)
	runDir := filepath.Join(base, "run")
	shardA := filepath.Join(base, "shard-a")
	shardB := filepath.Join(base, "shard-b")

	// Open a fanout-16 sharded store whose packs spread over the run
	// directory plus two extra roots ("devices").
	st, err := store.OpenWith(runDir, store.Options{
		ShardFanout: store.DefaultShardFanout,
		ShardDirs:   []string{shardA, shardB},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("opened %s: layout %s, packs across 3 roots\n", runDir, st.Layout())

	// A frozen backbone shared by every writer, plus per-writer state: the
	// fine-tuning-family shape (RTE/CoLA share frozen backbones).
	backbone := payload(8*ckptfmt.DefaultChunkSize, 0xBACB01)

	// Concurrent spooling: four writers materialize checkpoints at once.
	// PutSections is safe for concurrent use — each shard serializes its
	// own appends, and the manifest commit is atomic per checkpoint.
	const writers, epochs = 4, 3
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for e := 0; e < epochs; e++ {
				head := payload(ckptfmt.DefaultChunkSize, uint64(0xF00+w*100+e))
				_, err := st.PutSections(store.Key{LoopID: fmt.Sprintf("tune-%d", w), Exec: e}, []store.Section{
					{Name: "backbone", Data: backbone},
					{Name: "head", Data: head},
					{Name: "step", Data: []byte(fmt.Sprintf("w%d-e%d", w, e))},
				}, 0, 0, 0)
				if err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			log.Fatal(err)
		}
	}
	d := st.Dedup()
	fmt.Printf("spooled %d checkpoints from %d concurrent writers: %.1f MB logical, %.1f MB stored (dedup %.1fx)\n",
		writers*epochs, writers, float64(d.LogicalBytes)/(1<<20), float64(d.StoredEncBytes)/(1<<20), d.Ratio())

	// Background spool to gzip: the first pass covers every shard; a second
	// pass after one small checkpoint touches only the dirtied shards.
	if _, err := st.Spool(); err != nil {
		log.Fatal(err)
	}
	if _, err := st.PutSections(store.Key{LoopID: "tune-0", Exec: epochs}, []store.Section{
		{Name: "backbone", Data: backbone},
		{Name: "step", Data: []byte("one more epoch")},
	}, 0, 0, 0); err != nil {
		log.Fatal(err)
	}
	if _, err := st.Spool(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("incremental spool done: second pass recompressed only the shards the new checkpoint dirtied")

	// Where did the packs land? Count per root.
	for _, root := range []string{runDir, shardA, shardB} {
		entries, _ := os.ReadDir(root)
		packs := 0
		for _, e := range entries {
			if len(e.Name()) == len("CHUNKS-00") && e.Name()[:7] == "CHUNKS-" {
				packs++
			}
		}
		fmt.Printf("  %-8s %2d shard packs\n", filepath.Base(root), packs)
	}

	// Read back through the daemon's flag-free shared open path: the SHARDS
	// file tells the store where the packs live.
	ro, err := store.OpenReadOnly(runDir)
	if err != nil {
		log.Fatal(err)
	}
	for w := 0; w < writers; w++ {
		for e := 0; e < epochs; e++ {
			secs, ok, err := ro.GetSections(store.Key{LoopID: fmt.Sprintf("tune-%d", w), Exec: e}, nil)
			if err != nil || !ok {
				log.Fatalf("read back tune-%d@%d: ok=%v err=%v", w, e, ok, err)
			}
			if len(secs[0].Data) != len(backbone) {
				log.Fatalf("tune-%d@%d: backbone came back %d bytes", w, e, len(secs[0].Data))
			}
		}
	}
	fmt.Println("read back every checkpoint via store.OpenReadOnly — no layout flags needed")
}
