// Adaptive checkpointing (paper §5.3): the Joint Invariant
//
//	M_i/C_i < n_i/(k_i+1) · min(1/(1+c), ε)
//
// decides after each loop execution whether to materialize its checkpoint.
// A training workload (small checkpoints, long epochs) memoizes every epoch;
// a fine-tuning workload (a frozen multi-megabyte backbone mutated by
// millisecond epochs) degrades to sparse periodic checkpointing, keeping
// record overhead under the tolerance ε instead of paying for a full
// checkpoint every epoch.
//
//	go run ./examples/adaptive_checkpointing
package main

import (
	"fmt"
	"log"
	"os"

	flor "flor.dev/flor"
	"flor.dev/flor/internal/workloads"
)

func recordBoth(name string) {
	spec, ok := workloads.Get(name)
	if !ok {
		log.Fatalf("unknown workload %s", name)
	}
	factory := spec.Build(workloads.Full)
	epochs := spec.Epochs(workloads.Full)

	adaptDir, _ := os.MkdirTemp("", "flor-adapt-*")
	defer os.RemoveAll(adaptDir)
	adaptive, err := flor.Record(adaptDir, factory)
	if err != nil {
		log.Fatal(err)
	}
	disDir, _ := os.MkdirTemp("", "flor-dis-*")
	defer os.RemoveAll(disDir)
	disabled, err := flor.Record(disDir, factory, flor.DisableAdaptiveCheckpointing())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-5s (%s, %d epochs)\n", spec.Name, spec.Mode, epochs)
	fmt.Printf("  adaptive: %4d checkpoints (%7.2f MB written)\n",
		adaptive.Checkpoints, float64(adaptive.CheckpointBytes)/(1<<20))
	fmt.Printf("  disabled: %4d checkpoints (%7.2f MB written)\n",
		disabled.Checkpoints, float64(disabled.CheckpointBytes)/(1<<20))
	if spec.Mode == "Fine-Tune" && adaptive.Checkpoints >= disabled.Checkpoints/2 {
		fmt.Println("  (expected sparse checkpointing for a fine-tuning workload!)")
	}
	fmt.Println()
}

func main() {
	fmt.Printf("Adaptive checkpointing under ε = %.2f%% (the paper's 1/15):\n\n", flor.DefaultEpsilon*100)
	// A training workload: cheap checkpoints, memoized every epoch.
	recordBoth("ImgN")
	// A fine-tuning workload: enormous checkpoints, sparse materialization
	// (the paper's RTE drops from 91% record overhead to under ε).
	recordBoth("RTE")
}
