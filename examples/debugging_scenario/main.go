// Alice's debugging scenario (paper §2.1), replayed with hindsight logging.
//
// Alice implements stochastic weight averaging with a bug: the running
// average resets every epoch with an inflated learning-rate bound, so
// gradients explode and regularization then collapses the weights. In the
// paper she re-trains twice to recover the diagnostics. With Flor she
// records once and asks the questions afterwards:
//
//  1. "Plot the weight and gradient magnitudes over time" — an outer-loop
//     probe, answered by partial replay in seconds.
//  2. "Show me the gradient norm at every step of the bad epochs" — an
//     inner-loop probe, answered by parallel replay of the training loop.
//
// go run ./examples/debugging_scenario
package main

import (
	"fmt"
	"log"
	"os"

	flor "flor.dev/flor"
	"flor.dev/flor/internal/autograd"
	"flor.dev/flor/internal/data"
	"flor.dev/flor/internal/nn"
	"flor.dev/flor/internal/opt"
	"flor.dev/flor/internal/tensor"
	"flor.dev/flor/internal/xrand"
)

const (
	epochs = 16
	steps  = 10
)

// buggySWA builds Alice's training program: ResNet-style training with her
// faulty stochastic-weight-averaging step. The high SWA learning-rate bound
// inflates updates; weight decay then over-compensates.
func buggySWA() *flor.Program {
	train := &flor.Loop{ID: "train", IterVar: "step", Iters: steps, Body: []flor.Stmt{
		flor.AssignFunc([]string{"avg_loss"}, "train_batch", []string{"net", "step"}, func(e *flor.Env) error {
			net := e.MustGet("net").(*flor.ModelVal).M.(*nn.ResidualMLP)
			ds := e.MustGet("data").(*flor.OpaqueVal).V.(*data.VectorDataset)
			x, labels := ds.Batch(e.Int("epoch"), e.Int("step"))
			tape := autograd.NewTape()
			nn.ZeroGrads(net)
			loss := tape.SoftmaxCrossEntropy(net.Forward(tape, autograd.NewConst(x)), labels)
			tape.Backward(loss)
			e.SetFloat("avg_loss", loss.Value.Item())
			return nil
		}),
		flor.ExprMethod("optimizer", "step", nil, func(e *flor.Env) error {
			e.MustGet("optimizer").(*flor.OptimizerVal).O.Step()
			return nil
		}),
		// Alice's buggy SWA: instead of averaging snapshots, she blends the
		// weights toward a scaled copy of themselves — with the SWA
		// learning-rate bound set far too high.
		flor.ExprMethod("swa", "update", []string{"net"}, func(e *flor.Env) error {
			net := e.MustGet("net").(*flor.ModelVal).M
			swaLR := e.MustGet("swa").(*flor.Float).V
			for _, p := range net.Params() {
				tensor.ScaleInPlace(p.Var.Value, 1+swaLR)
			}
			return nil
		}),
	}}
	return &flor.Program{
		Name: "alice-swa",
		Setup: []flor.Stmt{
			flor.AssignFunc([]string{"net", "optimizer", "swa"}, "build", nil, func(e *flor.Env) error {
				net := nn.NewResidualMLP(xrand.New(7), 16, 32, 32, 4, 4)
				e.Set("net", &flor.ModelVal{M: net})
				// Weight decay (regularization) fights the SWA inflation.
				e.Set("optimizer", &flor.OptimizerVal{O: opt.NewSGD(net, 0.05, 0.9, 0.05)})
				e.Set("swa", &flor.Float{V: 0.04}) // inflated SWA LR bound
				e.Set("data", &flor.OpaqueVal{V: data.NewVectorDataset(7, 16, 4, 16, steps, 0.5)})
				return nil
			}),
			flor.AssignExpr([]string{"avg_loss"}, nil, func(e *flor.Env) error {
				e.SetFloat("avg_loss", 0)
				return nil
			}),
		},
		Main: &flor.Loop{ID: "main", IterVar: "epoch", Iters: epochs, Body: []flor.Stmt{
			flor.LoopStmt(train),
			flor.LogStmt("loss", func(e *flor.Env) (string, error) {
				return fmt.Sprintf("epoch=%d loss=%.4f", e.Int("epoch"), e.Float("avg_loss")), nil
			}),
		}},
	}
}

func main() {
	dir, err := os.MkdirTemp("", "flor-alice-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	rec, err := flor.Record(dir, buggySWA)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Alice's SWA run finished. The loss looks wrong:")
	for _, l := range rec.Logs[len(rec.Logs)-4:] {
		fmt.Println("  " + l)
	}

	// Question 1: weight and gradient magnitudes over epochs (outer probe).
	fmt.Println("\nHindsight question 1: weight magnitudes by epoch (partial replay)")
	outer := func() *flor.Program {
		p := buggySWA()
		p.Main.Body = flor.AddLog(p.Main.Body, 1, flor.LogStmt("weights", func(e *flor.Env) (string, error) {
			m := e.MustGet("net").(*flor.ModelVal).M
			return fmt.Sprintf("epoch=%d |w|=%.3g", e.Int("epoch"), nn.WeightNorm(m)), nil
		}))
		return p
	}
	res1, err := flor.Replay(dir, outer)
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range res1.Logs {
		if flor.LogLabel(l) == "weights" {
			fmt.Println("  " + l)
		}
	}
	fmt.Printf("  (replay took %.3fs; training loop skipped via checkpoints)\n", float64(res1.WallNs)/1e9)

	// Question 2: per-step gradient magnitudes (inner probe, parallel).
	fmt.Println("\nHindsight question 2: gradient norms inside the bad epochs (parallel replay)")
	inner := func() *flor.Program {
		p := buggySWA()
		train := p.Main.Body[0].Loop
		train.Body = flor.AddLog(train.Body, 2, flor.LogStmt("grad", func(e *flor.Env) (string, error) {
			m := e.MustGet("net").(*flor.ModelVal).M
			return fmt.Sprintf("epoch=%d step=%d |g|=%.3g", e.Int("epoch"), e.Int("step"), nn.GradNorm(m)), nil
		}))
		return p
	}
	res2, err := flor.Replay(dir, inner, flor.Workers(2), flor.Init(flor.WeakInit))
	if err != nil {
		log.Fatal(err)
	}
	shown := 0
	for _, l := range res2.Logs {
		if flor.LogLabel(l) == "grad" && shown < 8 {
			fmt.Println("  " + l)
			shown++
		}
	}
	fmt.Printf("  ... (%d grad lines total, produced by %d workers in %.3fs)\n",
		countLabel(res2.Logs, "grad"), res2.Workers, float64(res2.WallNs)/1e9)
	fmt.Println("\nDiagnosis: gradients explode while weights inflate, then weight decay")
	fmt.Println("collapses them — the paper's over-regularization signature. Alice fixes")
	fmt.Println("the SWA bound and retrains once, not four times.")
}

func countLabel(lines []string, label string) int {
	n := 0
	for _, l := range lines {
		if flor.LogLabel(l) == label {
			n++
		}
	}
	return n
}
