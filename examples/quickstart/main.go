// Quickstart: record a small training program, then add a log statement in
// hindsight and replay to get its output — without retraining.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	flor "flor.dev/flor"
	"flor.dev/flor/internal/autograd"
	"flor.dev/flor/internal/data"
	"flor.dev/flor/internal/nn"
	"flor.dev/flor/internal/opt"
	"flor.dev/flor/internal/xrand"
)

// factory builds the training program. Statements use the statically
// analyzable patterns of the paper's Table 1, so Flor can compute each
// loop's changeset and checkpoint exactly the state that changes.
func factory() *flor.Program {
	const epochs, steps = 20, 8

	train := &flor.Loop{ID: "train", IterVar: "step", Iters: steps, Body: []flor.Stmt{
		// avg_loss = train_batch(net, step): rule 2 — the model reaches the
		// changeset through the optimizer (runtime augmentation).
		flor.AssignFunc([]string{"avg_loss"}, "train_batch", []string{"net", "step"}, func(e *flor.Env) error {
			net := e.MustGet("net").(*flor.ModelVal).M.(*nn.ResidualMLP)
			ds := e.MustGet("data").(*flor.OpaqueVal).V.(*data.VectorDataset)
			x, labels := ds.Batch(e.Int("epoch"), e.Int("step"))
			tape := autograd.NewTape()
			nn.ZeroGrads(net)
			loss := tape.SoftmaxCrossEntropy(net.Forward(tape, autograd.NewConst(x)), labels)
			tape.Backward(loss)
			e.SetFloat("avg_loss", loss.Value.Item())
			return nil
		}),
		// optimizer.step(): rule 4 — the optimizer joins the changeset.
		flor.ExprMethod("optimizer", "step", nil, func(e *flor.Env) error {
			e.MustGet("optimizer").(*flor.OptimizerVal).O.Step()
			return nil
		}),
	}}

	return &flor.Program{
		Name: "quickstart",
		Setup: []flor.Stmt{
			flor.AssignFunc([]string{"net", "optimizer"}, "build", nil, func(e *flor.Env) error {
				net := nn.NewResidualMLP(xrand.New(42), 16, 32, 32, 4, 4)
				e.Set("net", &flor.ModelVal{M: net})
				e.Set("optimizer", &flor.OptimizerVal{O: opt.NewSGD(net, 0.05, 0.9, 1e-4)})
				e.Set("data", &flor.OpaqueVal{V: data.NewVectorDataset(42, 16, 4, 16, 8, 0.5)})
				return nil
			}),
			flor.AssignExpr([]string{"avg_loss"}, nil, func(e *flor.Env) error {
				e.SetFloat("avg_loss", 0)
				return nil
			}),
		},
		Main: &flor.Loop{ID: "main", IterVar: "epoch", Iters: 20, Body: []flor.Stmt{
			flor.LoopStmt(train),
			flor.LogStmt("loss", func(e *flor.Env) (string, error) {
				return fmt.Sprintf("epoch=%d loss=%.6f", e.Int("epoch"), e.Float("avg_loss")), nil
			}),
		}},
	}
}

func main() {
	dir, err := os.MkdirTemp("", "flor-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Train once, with Flor record on (the paper's "import flor").
	rec, err := flor.Record(dir, factory)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("record: trained 20 epochs in %.3fs, %d checkpoints (%.1f KB)\n",
		float64(rec.WallNs)/1e9, rec.Checkpoints, float64(rec.CheckpointBytes)/1024)
	fmt.Println("record log tail:", rec.Logs[len(rec.Logs)-1])

	// 2. Days later: "what was the weight norm doing?" Add a log statement
	//    in hindsight — no other code change — and replay.
	probed := func() *flor.Program {
		p := factory()
		p.Main.Body = flor.AddLog(p.Main.Body, 1, flor.LogStmt("weight_norm", func(e *flor.Env) (string, error) {
			m := e.MustGet("net").(*flor.ModelVal).M
			return fmt.Sprintf("epoch=%d norm=%.4f", e.Int("epoch"), nn.WeightNorm(m)), nil
		}))
		return p
	}
	res, err := flor.Replay(dir, probed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreplay: produced hindsight logs in %.3fs (probed loops: %v)\n",
		float64(res.WallNs)/1e9, res.ProbedLoops)
	for _, l := range res.Logs {
		fmt.Println("  " + l)
	}
	if len(res.Anomalies) == 0 {
		fmt.Println("\ndeferred check: replay reproduced the recorded run exactly")
	} else {
		fmt.Println("\nreplay anomalies:", res.Anomalies)
	}
}
