// Package flor is a record-replay system for hindsight logging of model
// training, reproducing "Hindsight Logging for Model Training" (Garcia et
// al., VLDB 2020) in Go.
//
// Hindsight logging lets a model developer add log statements to training
// code *after* a run and obtain their output without retraining. Flor
// records a training program with low overhead — automatically memoizing
// loop side-effects into checkpoints, pruned by static side-effect analysis
// (lean checkpointing) and bounded by a user-specifiable overhead tolerance
// (adaptive checkpointing) — and then replays it physiologically: loops
// whose internals are not probed are skipped by restoring their checkpoints;
// probed loops re-execute, in parallel across workers, each initialized
// directly from checkpointed state.
//
// # Building training programs
//
// Training code is expressed as a Program: setup statements, one main loop
// (epochs), and nested training loops, built from statement constructors
// that mirror the statically analyzable patterns of the paper's Table 1:
//
//	train := &flor.Loop{ID: "train", IterVar: "step", Iters: 50, Body: []flor.Stmt{
//	    flor.AssignFunc([]string{"avg_loss"}, "train_batch", []string{"net", "step"}, trainBatch),
//	    flor.ExprMethod("optimizer", "step", nil, optimizerStep),
//	}}
//	program := &flor.Program{
//	    Name:  "quickstart",
//	    Setup: []flor.Stmt{ ... },
//	    Main:  &flor.Loop{ID: "main", IterVar: "epoch", Iters: 200,
//	           Body: []flor.Stmt{flor.LoopStmt(train), flor.LogStmt("loss", logLoss)}},
//	}
//
// # Record and replay
//
//	rec, err := flor.Record("run-dir", factory)                  // record once
//	...
//	probed := flor.WithLog(factory, ...)                         // add hindsight logs
//	res, err := flor.Replay("run-dir", probed, flor.Workers(4))  // get their output fast
package flor

import (
	"fmt"

	"flor.dev/flor/internal/adapt"
	"flor.dev/flor/internal/backmat"
	"flor.dev/flor/internal/ckptfmt"
	"flor.dev/flor/internal/core"
	"flor.dev/flor/internal/replay"
	"flor.dev/flor/internal/runlog"
	"flor.dev/flor/internal/script"
	"flor.dev/flor/internal/serve"
	"flor.dev/flor/internal/value"
)

// Program is a training script: setup statements, a main (epoch) loop, and
// tail statements.
type Program = script.Program

// Loop is a counted loop with a stable static identifier.
type Loop = script.Loop

// Stmt is one program statement.
type Stmt = script.Stmt

// Env is a program environment mapping variable names to live values.
type Env = script.Env

// NewEnv returns an empty environment.
func NewEnv() *Env { return script.NewEnv() }

// Statement constructors (the statically analyzable patterns of Table 1).
var (
	// AssignMethod builds "t1,..,tn = recv.fn(args...)" (rule 1: the
	// receiver and all targets join the loop changeset).
	AssignMethod = script.AssignMethod
	// AssignFunc builds "t1,..,tn = fn(args...)" (rule 2: targets only).
	AssignFunc = script.AssignFunc
	// AssignExpr builds "t1,..,tn = <expr>" (rule 3: targets only).
	AssignExpr = script.AssignExpr
	// ExprMethod builds "recv.fn(args...)" (rule 4: receiver only).
	ExprMethod = script.ExprMethod
	// ExprFunc builds "fn(args...)" (rule 5: refuses memoization of the
	// enclosing loop — use for statements with unanalyzable side-effects).
	ExprFunc = script.ExprFunc
	// LogStmt builds a log statement; adding one to recorded code in
	// hindsight is a probe.
	LogStmt = script.LogStmt
	// LoopStmt embeds a nested loop into a statement list.
	LoopStmt = script.LoopStmt
	// AddLog inserts a log statement into a statement list at an index.
	AddLog = script.AddLog
)

// Environment value wrappers. Program state lives in the Env as these typed
// boxes; checkpoints snapshot and restore them.
type (
	// Int is a mutable integer box.
	Int = value.Int
	// Float is a mutable float box.
	Float = value.Float
	// StringVal is a mutable string box.
	StringVal = value.String
	// Bool is a mutable bool box.
	Bool = value.Bool
	// TensorVal wraps a live tensor.
	TensorVal = value.Tensor
	// ModelVal wraps a live nn model; its snapshot captures every parameter.
	ModelVal = value.Model
	// OptimizerVal wraps a live optimizer, whose reference to its model
	// drives changeset augmentation.
	OptimizerVal = value.Optimizer
	// SchedulerVal wraps a live LR scheduler.
	SchedulerVal = value.Scheduler
	// RNGVal wraps a live deterministic random generator.
	RNGVal = value.RNG
	// OpaqueVal wraps a non-checkpointable runtime handle (datasets etc.).
	OpaqueVal = value.Opaque
)

// Strategy selects the background materialization implementation of §5.1.
type Strategy = backmat.Strategy

// Materialization strategies (paper Figure 5).
const (
	// StrategyBaseline serializes and writes on the training thread.
	StrategyBaseline = backmat.Baseline
	// StrategyQueue serializes on the training thread, writes behind.
	StrategyQueue = backmat.Queue
	// StrategyPlasma hands objects off without serializing on the caller.
	StrategyPlasma = backmat.Plasma
	// StrategyFork snapshots on the caller and does everything else behind —
	// the paper's default.
	StrategyFork = backmat.Fork
)

// InitMode selects the parallel-replay worker initialization strategy.
type InitMode = replay.InitMode

// Worker initialization strategies (paper §5.4.2).
const (
	// StrongInit replays every prior epoch from checkpoints (default).
	StrongInit = replay.Strong
	// WeakInit jumps to the checkpoint nearest the worker's segment.
	WeakInit = replay.Weak
)

// Scheduler selects how replay distributes main-loop iterations over
// parallel workers.
type Scheduler = replay.Scheduler

// Replay scheduling policies.
const (
	// SchedulerStatic splits iterations uniformly with static assignment
	// (the paper's generator partitioning; default).
	SchedulerStatic = replay.SchedStatic
	// SchedulerBalanced splits by recorded per-iteration cost, snapping
	// segment boundaries to materialized checkpoints.
	SchedulerBalanced = replay.SchedBalanced
	// SchedulerStealing additionally lets idle workers steal the trailing
	// half of the heaviest remaining segment, re-initializing from the
	// nearest checkpoint. Logs still merge deterministically in iteration
	// order.
	SchedulerStealing = replay.SchedStealing
)

// DefaultEpsilon is the paper's record overhead tolerance, 1/15 ≈ 6.67 %.
const DefaultEpsilon = adapt.DefaultEpsilon

// Anomaly is a record/replay divergence found by the deferred correctness
// check.
type Anomaly = runlog.Anomaly

// Option configures Record and Replay.
type Option func(*options)

type options struct {
	rec core.RecordOptions
	rep replay.Options
}

// Epsilon sets the record overhead tolerance ε (default 1/15).
func Epsilon(e float64) Option {
	return func(o *options) { o.rec.Epsilon = e }
}

// WithStrategy selects the materialization strategy (default StrategyFork).
func WithStrategy(s Strategy) Option {
	return func(o *options) { o.rec.Strategy = s }
}

// DisableAdaptiveCheckpointing checkpoints every loop execution regardless
// of cost (the "adaptivity disabled" configuration of Figure 7).
func DisableAdaptiveCheckpointing() Option {
	return func(o *options) { o.rec.DisableAdaptive = true }
}

// Shards records into a hash-prefix sharded checkpoint store at the given
// fanout (a power of two in [2, 256]; store.DefaultShardFanout is 16).
// Sharding splits the chunk pack and dedup index by content-hash prefix so
// checkpoint writes fan out across shards concurrently and replay issues
// per-shard reads; see docs/FORMATS.md. Replay needs no matching option —
// the layout is detected from the run directory.
func Shards(fanout int) Option {
	return func(o *options) { o.rec.ShardFanout = fanout }
}

// ShardDirs spreads a sharded store's packs over extra root directories
// (one device or mount per directory). Only meaningful together with
// Shards; the directory list is persisted in the run directory so replay
// and serving find the packs without options.
func ShardDirs(dirs ...string) Option {
	return func(o *options) { o.rec.ShardDirs = dirs }
}

// Pool records into a shared chunk pool rooted at dir (created on first
// use; relative paths resolve against the process working directory, while
// the run's manifest records a run-dir-relative reference so a project
// tree relocates as a unit). Runs attached to
// the same pool — a fine-tuning family over one frozen backbone, a swept
// hyperparameter grid — deduplicate checkpoint chunks against each other,
// so shared state is stored once per project instead of once per run, and
// concurrent replays of sibling runs share decoded payloads. Combine with
// Shards to pick the pool's shard fanout at creation. Replay needs no
// matching option — the run's manifest records the attachment.
func Pool(dir string) Option {
	return func(o *options) { o.rec.Pool = dir }
}

// Chunk-frame encodings for WithFrameStyle (docs/FORMATS.md describes the
// wire formats).
const (
	// FrameStyleAuto is the adaptive default: deflate when it shrinks the
	// chunk, raw otherwise.
	FrameStyleAuto = ckptfmt.StyleAuto
	// FrameStyleDeflate compresses every chunk with DEFLATE — smallest
	// packs, slowest decode.
	FrameStyleDeflate = ckptfmt.StyleDeflate
	// FrameStyleLZ4 compresses with an LZ4-style block format — packs
	// slightly larger than deflate, decode several times faster. Chunks it
	// cannot shrink fall back to raw frames.
	FrameStyleLZ4 = ckptfmt.StyleLZ4
)

// WithFrameStyle forces the chunk-frame encoding for new v2 checkpoints
// (default: adaptive). Restore-latency-sensitive runs pick FrameStyleLZ4;
// storage-bound runs keep deflate. Replay needs no matching option — each
// frame carries its style, and the run directory's FORMAT marker makes
// builds without LZ4 support refuse the store cleanly rather than
// misdecode it.
func WithFrameStyle(s byte) Option {
	return func(o *options) { o.rec.FrameStyle = s }
}

// Workers sets the degree of hindsight parallelism G for replay.
func Workers(g int) Option {
	return func(o *options) { o.rep.Workers = g }
}

// Init selects the worker initialization mode for replay.
func Init(m InitMode) Option {
	return func(o *options) { o.rep.Init = m }
}

// WithScheduler selects the replay scheduling policy (default
// SchedulerStatic). SchedulerBalanced and SchedulerStealing use the
// per-iteration timings captured during record to equalize worker makespans
// under skewed iteration costs.
func WithScheduler(s Scheduler) Option {
	return func(o *options) { o.rep.Scheduler = s }
}

// RecordResult reports a record run.
type RecordResult struct {
	// WallNs is the instrumented run's duration including materialization
	// drain.
	WallNs int64
	// Logs is the record-phase run log.
	Logs []string
	// Checkpoints is the number of materialized checkpoints.
	Checkpoints int
	// CheckpointBytes is the total uncompressed checkpoint volume.
	CheckpointBytes int64
	// C is the refined restore/materialize scaling factor.
	C float64
}

// Record executes factory's program with Flor instrumentation, materializing
// checkpoints into dir. All the user's code needs is to be expressed as a
// Program — the paper's "import flor".
func Record(dir string, factory func() *Program, opts ...Option) (*RecordResult, error) {
	o := gather(opts)
	res, err := core.Record(dir, factory, o.rec)
	if err != nil {
		return nil, err
	}
	return &RecordResult{
		WallNs:          res.WallNs,
		Logs:            res.Logs,
		Checkpoints:     res.MatStats.Checkpoints,
		CheckpointBytes: res.MatStats.BytesWritten,
		C:               res.C,
	}, nil
}

// ReplayResult reports a hindsight replay.
type ReplayResult struct {
	// Logs is the merged replay log in iteration order, including the new
	// probes' output.
	Logs []string
	// ProbedLoops lists the loop IDs the source diff found probed.
	ProbedLoops []string
	// Anomalies is the deferred correctness check's findings; empty means
	// the replay reproduced the record exactly (modulo the new probes).
	Anomalies []Anomaly
	// WallNs is the replay's wall-clock duration.
	WallNs int64
	// Workers is the number of parallel workers used.
	Workers int
	// Scheduler is the scheduling policy the replay ran under.
	Scheduler Scheduler
	// Steals counts the leases idle workers stole (SchedulerStealing only).
	Steals int
}

// Replay re-executes the recorded run in dir against factory's (possibly
// probed) program: loops without new log statements are skipped by restoring
// their checkpoints; probed loops re-execute across Workers(g) parallel
// workers.
func Replay(dir string, factory func() *Program, opts ...Option) (*ReplayResult, error) {
	rec, err := core.LoadRecording(dir)
	if err != nil {
		return nil, err
	}
	o := gather(opts)
	res, err := replay.Replay(rec, factory, o.rep)
	if err != nil {
		return nil, err
	}
	var probed []string
	for id, on := range res.Probes {
		if on {
			probed = append(probed, id)
		}
	}
	return &ReplayResult{
		Logs:        res.Logs,
		ProbedLoops: probed,
		Anomalies:   res.Anomalies,
		WallNs:      res.WallNs,
		Workers:     len(res.Workers),
		Scheduler:   res.Scheduler,
		Steals:      res.Steals,
	}, nil
}

// ServeOptions configures an embedded flord daemon (see internal/serve for
// knob semantics: shared worker-pool slots, per-run admission control,
// open-store LRU sizing).
type ServeOptions = serve.Options

// ServeRun registers one recording with an embedded daemon: a run ID, its
// recorded directory, and named probe factories ("base" plus hindsight-
// probed variants) that HTTP clients select by name.
type ServeRun = serve.RunConfig

// Daemon is a running multi-run replay server; it exposes Handler(),
// Stats(), and Register() for embedding into an existing process.
type Daemon = serve.Server

// NewDaemon builds a flord daemon serving the given recordings: stores stay
// open (and their decoded payloads cached) across queries in an LRU, and all
// queries share one admission-controlled worker pool. Serve its Handler()
// on a listener of your choice, or call Serve to listen directly.
func NewDaemon(opts ServeOptions, runs ...ServeRun) (*Daemon, error) {
	d := serve.New(opts)
	for _, r := range runs {
		if err := d.Register(r); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// Serve runs a flord daemon on opts.Addr, blocking until the listener
// fails — the embedding API for serving replay queries over your own
// programs (the standalone flord binary can only serve built-in workloads).
func Serve(opts ServeOptions, runs ...ServeRun) error {
	d, err := NewDaemon(opts, runs...)
	if err != nil {
		return err
	}
	return d.ListenAndServe()
}

// Vanilla executes factory's program without any instrumentation, returning
// its logs and duration — the baseline of every comparison in the paper.
func Vanilla(factory func() *Program) (logs []string, wallNs int64, err error) {
	return core.Vanilla(factory)
}

// SampleResult reports a sampling replay.
type SampleResult struct {
	// Iterations is the sorted, deduplicated set of replayed iterations.
	Iterations []int
	// Logs is the output of the sampled iterations, including probes.
	Logs []string
	// WallNs is the replay duration.
	WallNs int64
}

// ReplaySampled replays only the chosen main-loop iterations (paper §8's
// iteration sampling): checkpoints give random access to any iteration, so
// point queries and binary searches over the past need not scan it.
func ReplaySampled(dir string, factory func() *Program, iterations []int) (*SampleResult, error) {
	rec, err := core.LoadRecording(dir)
	if err != nil {
		return nil, err
	}
	res, err := replay.ReplaySample(rec, factory, iterations)
	if err != nil {
		return nil, err
	}
	return &SampleResult{Iterations: res.Iterations, Logs: res.Logs, WallNs: res.WallNs}, nil
}

func gather(opts []Option) *options {
	o := &options{}
	o.rec.Strategy = backmat.Fork
	for _, fn := range opts {
		fn(o)
	}
	return o
}

// Validate checks that a program is well-formed for Flor: it has a main
// loop, loop IDs are unique, and iteration variables do not collide.
func Validate(p *Program) error {
	if p.Main == nil {
		return fmt.Errorf("flor: program %q has no main loop", p.Name)
	}
	seen := map[string]bool{}
	for _, l := range p.Loops() {
		if seen[l.ID] {
			return fmt.Errorf("flor: duplicate loop ID %q", l.ID)
		}
		seen[l.ID] = true
		if l.Iters < 0 {
			return fmt.Errorf("flor: loop %q has negative iteration count", l.ID)
		}
	}
	return checkIterVars(p.Main, map[string]string{})
}

// checkIterVars rejects iteration-variable collisions: a loop whose IterVar
// matches any enclosing loop's would clobber the outer counter mid-flight,
// corrupting checkpoint keys and replay positioning. Sibling loops may share
// an IterVar — each run to completion before the variable is read again.
// enclosing maps each live IterVar to the loop that owns it.
func checkIterVars(l *script.Loop, enclosing map[string]string) error {
	if owner, clash := enclosing[l.IterVar]; clash {
		return fmt.Errorf("flor: loop %q reuses iteration variable %q of enclosing loop %q",
			l.ID, l.IterVar, owner)
	}
	enclosing[l.IterVar] = l.ID
	defer delete(enclosing, l.IterVar)
	for i := range l.Body {
		if nested := l.Body[i].Loop; nested != nil {
			if err := checkIterVars(nested, enclosing); err != nil {
				return err
			}
		}
	}
	return nil
}

// LogLabel extracts the label prefix of a run-log line ("label: message").
func LogLabel(line string) string { return runlog.Label(line) }
