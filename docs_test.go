package flor_test

// Documentation hygiene checks, run by the tier-1 suite and by the CI docs
// lane: every internal package must carry a godoc package comment, and
// every relative link in the repo's markdown docs must resolve. Keeping
// these as plain tests (rather than CI-only shell) means a broken doc
// fails `go test ./...` locally, before review.

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"flor.dev/flor/internal/obs"
)

// TestInternalPackageComments fails for any internal/* (or cmd/*) package
// whose Go files all lack a package comment. The comment is the package's
// godoc front door; subsystem-sized packages (store, sched, serve) document
// their on-disk formats and compatibility contracts there.
func TestInternalPackageComments(t *testing.T) {
	roots := []string{"internal", "cmd"}
	for _, root := range roots {
		entries, err := os.ReadDir(root)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if !e.IsDir() {
				continue
			}
			dir := filepath.Join(root, e.Name())
			files, err := filepath.Glob(filepath.Join(dir, "*.go"))
			if err != nil {
				t.Fatal(err)
			}
			documented := false
			sawSource := false
			fset := token.NewFileSet()
			for _, f := range files {
				if strings.HasSuffix(f, "_test.go") {
					continue
				}
				sawSource = true
				af, err := parser.ParseFile(fset, f, nil, parser.PackageClauseOnly|parser.ParseComments)
				if err != nil {
					t.Fatalf("%s: %v", f, err)
				}
				if af.Doc != nil && strings.TrimSpace(af.Doc.Text()) != "" {
					documented = true
					break
				}
			}
			if sawSource && !documented {
				t.Errorf("package %s has no package comment (add one to a file in %s)", e.Name(), dir)
			}
		}
	}
}

// mdLink matches markdown links/images; group 1 is the target.
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)\)`)

// TestDocRelativeLinks resolves every relative link in README.md and
// docs/*.md against the filesystem, so doc reorganizations cannot leave
// dangling references.
func TestDocRelativeLinks(t *testing.T) {
	mds := []string{"README.md", "ROADMAP.md", "CHANGES.md"}
	extra, err := filepath.Glob(filepath.Join("docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	mds = append(mds, extra...)
	for _, md := range mds {
		raw, err := os.ReadFile(md)
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(raw), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(md), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken relative link %q (resolved %s)", md, m[1], resolved)
			}
		}
	}
}

// TestMetricCatalogDocumented requires every metric in the obs catalog to
// appear in docs/OBSERVABILITY.md: the registry's closed namespace means a
// metric cannot exist without a catalog row, and this test means a catalog
// row cannot exist without operator documentation.
func TestMetricCatalogDocumented(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("docs", "OBSERVABILITY.md"))
	if err != nil {
		t.Fatal(err)
	}
	doc := string(raw)
	for _, d := range obs.Catalog {
		if !strings.Contains(doc, "`"+d.Name+"`") {
			t.Errorf("metric %s is in the catalog but not documented in docs/OBSERVABILITY.md", d.Name)
		}
		for _, l := range d.Labels {
			if !strings.Contains(doc, "`"+l+"`") {
				t.Errorf("metric %s label %q not mentioned in docs/OBSERVABILITY.md", d.Name, l)
			}
		}
	}
}
