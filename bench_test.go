// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5–§6). Each benchmark drives the same harness as cmd/florbench, at smoke
// scale so the whole suite stays tractable; run
//
//	go run ./cmd/florbench
//
// for the full-scale (paper epoch counts) regeneration, whose output is
// recorded in EXPERIMENTS.md. Headline quantities are attached to each
// benchmark via ReportMetric.
package flor_test

import (
	"bytes"
	"testing"

	"flor.dev/flor/internal/bench"
	"flor.dev/flor/internal/workloads"
)

func newSession(b *testing.B) *bench.Session {
	b.Helper()
	old := bench.Trials
	bench.Trials = 1
	b.Cleanup(func() { bench.Trials = old })
	return bench.NewSession(b.TempDir(), workloads.Smoke, &bytes.Buffer{})
}

// BenchmarkTable3Workloads runs one vanilla training pass of every Table 3
// workload (the substrate cost underlying all other experiments).
func BenchmarkTable3Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSession(b)
		if _, err := s.RunAll(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5Materialization compares the four background materialization
// strategies (paper Figure 5).
func BenchmarkFig5Materialization(b *testing.B) {
	s := newSession(b)
	var lastForkMs float64
	for i := 0; i < b.N; i++ {
		rep, err := s.Fig5(5)
		if err != nil {
			b.Fatal(err)
		}
		lastForkMs = float64(rep.CallerBlockedNs["Fork"]) / 1e6
		b.ReportMetric(float64(rep.CallerBlockedNs["Baseline"])/1e6, "baseline-ms")
		b.ReportMetric(lastForkMs, "fork-ms")
	}
}

// BenchmarkFig7AdaptiveCheckpointing measures record overhead with adaptive
// checkpointing on and off (paper Figure 7).
func BenchmarkFig7AdaptiveCheckpointing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSession(b)
		rep, err := s.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		var worstAdaptive float64
		for _, r := range rep.Rows {
			if r.Overhead > worstAdaptive {
				worstAdaptive = r.Overhead
			}
		}
		b.ReportMetric(worstAdaptive*100, "worst-adaptive-ovhd-%")
	}
}

// BenchmarkFig11RecordOverhead measures training time with and without
// checkpointing (paper Figure 11; paper average 1.47%).
func BenchmarkFig11RecordOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSession(b)
		rep, err := s.Fig11()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.MeanOverhed*100, "mean-ovhd-%")
	}
}

// BenchmarkTable4StorageCost records every workload and spools checkpoints
// to gzip, reporting the total footprint (paper Table 4).
func BenchmarkTable4StorageCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSession(b)
		rep, err := s.Table4()
		if err != nil {
			b.Fatal(err)
		}
		var total int64
		for _, r := range rep.Rows {
			total += r.GzBytes
		}
		b.ReportMetric(float64(total)/(1<<20), "gz-total-MB")
	}
}

// BenchmarkFig10ParallelReplayFraction measures parallel replay time as a
// fraction of vanilla re-execution at G=4 (paper Figure 10).
func BenchmarkFig10ParallelReplayFraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSession(b)
		rep, err := s.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		var worst float64
		for _, r := range rep.Rows {
			if r.WeakFraction > worst {
				worst = r.WeakFraction
			}
		}
		b.ReportMetric(worst*100, "worst-weak-fraction-%")
	}
}

// BenchmarkFig12OuterProbeLatency measures partial replay for outer-loop
// probes (paper Figure 12 top: speedups 7x–1123x).
func BenchmarkFig12OuterProbeLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSession(b)
		rep, err := s.Fig12()
		if err != nil {
			b.Fatal(err)
		}
		var best float64
		for _, r := range rep.Rows {
			if r.OuterSpeedup > best {
				best = r.OuterSpeedup
			}
		}
		b.ReportMetric(best, "best-outer-speedup-x")
	}
}

// BenchmarkFig12InnerProbeLatency measures parallel-only replay for
// inner-loop probes (paper Figure 12 bottom).
func BenchmarkFig12InnerProbeLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSession(b)
		rep, err := s.Fig12()
		if err != nil {
			b.Fatal(err)
		}
		var best float64
		for _, r := range rep.Rows {
			if r.InnerVirtSpeedup > best {
				best = r.InnerVirtSpeedup
			}
		}
		b.ReportMetric(best, "best-inner-speedup-x")
	}
}

// BenchmarkFig13ScaleOut sweeps RsNt replay from 1 to 16 workers (paper
// Figure 13: near-ideal, capped at 15.38x for 200 epochs on 16 GPUs).
func BenchmarkFig13ScaleOut(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSession(b)
		rep, err := s.Fig13()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.Speedup[len(rep.Speedup)-1], "speedup-max-workers")
	}
}

// BenchmarkFig14CostOfParallelism compares serial vs parallel replay dollar
// cost (paper Figure 14: roughly equal cost, much lower latency).
func BenchmarkFig14CostOfParallelism(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSession(b)
		rep, err := s.Fig14()
		if err != nil {
			b.Fatal(err)
		}
		var worstRatio float64
		for _, r := range rep.Rows {
			if r.SerialCost > 0 {
				if ratio := r.ParallelCost / r.SerialCost; ratio > worstRatio {
					worstRatio = ratio
				}
			}
		}
		b.ReportMetric(worstRatio, "worst-cost-ratio")
	}
}

// BenchmarkCkptThroughput compares checkpoint materialize/restore
// throughput under segment format v1 (single monolithic blob) and v2
// (parallel frames with content-addressed dedup), reporting the v2 speedups
// and the frozen-layer dedup ratio.
func BenchmarkCkptThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSession(b)
		rep, err := s.CkptThroughput(6)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.MatSpeedupFrozen, "mat-speedup-frozen")
		b.ReportMetric(rep.ResSpeedupFrozen, "res-speedup-frozen")
		b.ReportMetric(rep.DedupRatioFrozen, "dedup-ratio-frozen")
		b.ReportMetric(rep.ShardedSpoolSpeedup, "sharded-spool-speedup")
		b.ReportMetric(rep.FamilyStorageReduction, "family-storage-reduction")
	}
}

// BenchmarkSerializationVsIO reproduces §5.1's measurements: the
// serialization/write ratio and the benefit of background materialization
// (paper: overhead 4.76% on-thread vs 1.74% in background).
func BenchmarkSerializationVsIO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newSession(b)
		rep, err := s.SerVsIO([]string{"Jasp", "ImgN"})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.Ratio, "ser-vs-write-ratio")
		b.ReportMetric(rep.BaselineOverhead*100, "onthread-ovhd-%")
		b.ReportMetric(rep.ForkOverhead*100, "background-ovhd-%")
	}
}
