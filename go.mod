module flor.dev/flor

go 1.24
